"""Smoke tests for the experiment harness at micro scale.

Each figure's ``run_*`` function is executed on a deliberately tiny
Scale so the whole module stays fast; shape assertions at real scales
live in benchmarks/.
"""

import pytest

from repro.experiments.common import (
    SCALES,
    Scale,
    get_scale,
    rate_for_utilization,
)

MICRO = Scale(
    name="tiny",  # reuses the tiny sweep bounds in fig9
    ns_levels=7,
    nc_nodes=600,
    n_servers=8,
    warmup=2.0,
    phase=2.0,
    n_phases=2,
    drain=2.0,
    cache_slots=8,
    digest_probe_limit=1,
    long_run=24.0,
    long_bucket=6,
)


class TestCommon:
    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "tiny"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale().name == "small"

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError):
            get_scale("nope")

    def test_scales_registered(self):
        assert set(SCALES) == {"tiny", "small", "paper", "million"}

    def test_rate_for_utilization(self):
        # util = rate * hops * T / N
        rate = rate_for_utilization(0.4, 1000, service_mean=0.005,
                                    hops_estimate=4.0)
        assert rate == pytest.approx(0.4 * 1000 / 0.02)

    def test_rate_rejects_bad_util(self):
        with pytest.raises(ValueError):
            rate_for_utilization(0.0, 10)

    def test_smooth_window_scales_with_phase(self):
        assert SCALES["paper"].smooth_window == 11
        assert SCALES["tiny"].smooth_window >= 3
        assert SCALES["tiny"].smooth_window % 2 == 1


class TestFig3:
    def test_runs_and_shapes(self):
        from repro.experiments.fig3_drops import run_fig3

        results = run_fig3(scale=MICRO, seed=1)
        assert set(results) == {
            "unif", "uzipf0.75", "uzipf1.00", "uzipf1.25", "uzipf1.50"
        }
        for series in results.values():
            assert all(v >= 0.0 for v in series)

    def test_reshuffle_times(self):
        from repro.experiments.fig3_drops import reshuffle_times

        times = reshuffle_times(MICRO, 0)
        assert len(times) == MICRO.n_phases - 1


class TestFig4:
    def test_runs(self):
        from repro.experiments.fig4_replicas import run_fig4

        results = run_fig4(scale=MICRO, seed=1)
        assert len(results) == 5
        assert all(all(v >= 0.0 for v in s) for s in results.values())


class TestFig5:
    def test_runs_with_subset(self):
        from repro.experiments.fig5_ablation import drop_table, run_fig5

        results = run_fig5(scale=MICRO, seed=1, presets=("B", "BCR"))
        table = drop_table(results)
        assert set(table) == {"B", "BCR"}
        assert len(table["B"]) == 10  # 2 namespaces x 5 streams
        for streams in table.values():
            assert all(0.0 <= v <= 1.0 for v in streams.values())


class TestFig6:
    def test_runs(self):
        from repro.experiments.fig6_load import run_fig6

        results = run_fig6(scale=MICRO, utilizations=(0.3,), seed=1)
        (label, series), = results.items()
        assert label == "util0.3"
        assert len(series["mean"]) == len(series["max"])
        assert len(series["smoothed_max"]) == len(series["max"])
        for m, M in zip(series["mean"], series["max"]):
            assert m <= M + 1e-12


class TestFig7:
    def test_runs(self):
        from repro.experiments.fig7_levels import run_fig7

        results = run_fig7(scale=MICRO, utilizations=(0.4,), seed=1)
        assert set(results) == {"unif@0.4", "uzipf@0.4"}
        for series in results.values():
            assert len(series) == MICRO.ns_levels + 1


class TestFig8:
    def test_runs_and_decay_metric(self):
        from repro.experiments.fig8_stabilization import decay_ratio, run_fig8

        results = run_fig8(scale=MICRO, seed=1)
        assert set(results) == {"unifS", "uzipfS1.00", "unifC", "uzipfC1.00"}
        for buckets in results.values():
            assert len(buckets) >= 4
            assert decay_ratio(buckets) >= 0.0

    def test_decay_ratio_validation(self):
        from repro.experiments.fig8_stabilization import decay_ratio

        with pytest.raises(ValueError):
            decay_ratio([1.0, 2.0])
        assert decay_ratio([10.0, 5.0, 2.0, 1.0]) == pytest.approx(0.1)


class TestFig9:
    def test_runs(self):
        from repro.experiments.fig9_scalability import run_fig9, sweep_sizes

        sizes = sweep_sizes(MICRO)
        results = run_fig9(scale=MICRO, duration=4.0, seed=1)
        assert list(results) == sizes
        for n, summary in results.items():
            assert summary["nodes"] >= 8 * n - 1
            assert summary["rate"] > 0

    def test_sweep_doubles(self):
        from repro.experiments.fig9_scalability import sweep_sizes

        for scale in SCALES.values():
            sizes = sweep_sizes(scale)
            assert all(b == 2 * a for a, b in zip(sizes, sizes[1:]))


class TestChurn:
    def test_runs_with_subset(self):
        from repro.experiments.churn_digests import run_churn

        results = run_churn(scale=MICRO, rfacts=(0.25,),
                            modes=("digests", "oracle"), seed=1)
        per_mode = results[0.25]
        assert set(per_mode) == {"digests", "oracle"}
        for summary in per_mode.values():
            assert 0.0 <= summary["stale_hop_rate"] <= 1.0


class TestTable1:
    def test_audit_clean(self):
        from repro.experiments.table1_state import run_table1

        counts = run_table1(scale=MICRO, seed=1)
        assert counts["owned"] == 2**8 - 1  # every node owned once
        assert counts["none"] == 0


class TestReport:
    def test_format_matrix(self):
        from repro.experiments.report import format_matrix

        out = format_matrix(["a"], ["x", "y"], [[1.0, 2.0]])
        assert "x" in out and "a" in out

    def test_format_series_table(self):
        from repro.experiments.report import format_series_table

        out = format_series_table({"s": [0.1, 0.2]}, max_rows=2)
        assert "s" in out

    def test_sparkline(self):
        from repro.experiments.report import sparkline

        assert sparkline([]) == ""
        line = sparkline([0.0, 0.5, 1.0], width=3)
        assert len(line) == 3

    def test_format_summary(self):
        from repro.experiments.report import format_summary

        out = format_summary({"k": 1.0}, title="T")
        assert "T" in out and "k" in out


class TestResilience:
    def test_runs(self):
        from repro.experiments.resilience import run_resilience

        r = run_resilience(scale=MICRO, seed=1)
        assert r["n_failed"] >= 1
        assert 0.0 <= r["completion_during"] <= 1.0
        assert r["completion_before"] > 0.5

    def test_validation(self):
        from repro.experiments.resilience import run_resilience

        with pytest.raises(ValueError):
            run_resilience(scale=MICRO, fail_fraction=0.0)

    def test_no_recovery_mode(self):
        from repro.experiments.resilience import run_resilience

        r = run_resilience(scale=MICRO, seed=1, recover=False)
        assert r["recovered"] == 0.0


class TestStaticVsAdaptive:
    def test_runs(self):
        from repro.experiments.static_vs_adaptive import run_static_vs_adaptive

        r = run_static_vs_adaptive(scale=MICRO, seed=1,
                                   modes=("static", "adaptive"))
        assert set(r) == {"static", "adaptive"}
        assert r["static"]["replicas_created"] == 0
        for mode in r:
            assert 0.0 <= r[mode]["drop_shifting"] <= 1.0


class TestHeterogeneity:
    def test_runs(self):
        from repro.experiments.heterogeneity import run_heterogeneity

        r = run_heterogeneity(scale=MICRO, seed=1)
        assert set(r) == {
            "homogeneous-BCR", "heterogeneous-BC", "heterogeneous-BCR"
        }
        assert r["homogeneous-BCR"]["slow_hosted_share"] == 0.0
        assert r["heterogeneous-BC"]["n_slow"] == 4.0  # half of 8
