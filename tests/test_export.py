"""Tests for CSV/JSON metric export."""

import io
import json

import pytest

from repro.analysis.export import (
    fig5_to_csv,
    matrix_to_csv,
    series_to_csv,
    summary_to_json,
    system_series_to_csv,
)


class TestSeriesCsv:
    def test_columns_and_rows(self):
        buf = io.StringIO()
        n = series_to_csv(buf, {"a": [1.0, 2.0], "b": [3.0]})
        assert n == 2
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "bin,a,b"
        assert lines[1] == "0,1.0,3.0"
        assert lines[2] == "1,2.0,"  # padded

    def test_empty(self):
        buf = io.StringIO()
        assert series_to_csv(buf, {}) == 0


class TestSystemCsv:
    def test_live_system_dump(self):
        from repro.cluster.builder import build_system
        from repro.cluster.config import SystemConfig
        from repro.namespace.generators import balanced_tree
        from repro.workload.arrivals import WorkloadDriver
        from repro.workload.streams import unif_stream

        ns = balanced_tree(levels=5)
        system = build_system(
            ns, SystemConfig.replicated(n_servers=4, seed=1,
                                        digest_probe_limit=1)
        )
        WorkloadDriver(system, unif_stream(100.0, 4.0, seed=1)).run()
        buf = io.StringIO()
        rows = system_series_to_csv(buf, system)
        assert rows >= 4
        header = buf.getvalue().splitlines()[0]
        for col in ("injected", "drops", "load_mean", "load_max"):
            assert col in header


class TestJson:
    def test_summary_roundtrip(self):
        buf = io.StringIO()
        summary_to_json(buf, {"x": 1.5, "y": 2.0})
        assert json.loads(buf.getvalue()) == {"x": 1.5, "y": 2.0}


class TestMatrix:
    def test_layout(self):
        buf = io.StringIO()
        matrix_to_csv(buf, ["r1"], ["c1", "c2"], [[1.0, 2.0]], corner="k")
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "k,c1,c2"
        assert lines[1] == "r1,1.0,2.0"

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            matrix_to_csv(io.StringIO(), ["r1", "r2"], ["c"], [[1.0]])
        with pytest.raises(ValueError):
            matrix_to_csv(io.StringIO(), ["r1"], ["c1", "c2"], [[1.0]])

    def test_fig5_table(self):
        buf = io.StringIO()
        fig5_to_csv(buf, {"B": {"unifS": 0.5}, "BCR": {"unifS": 0.1}})
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "preset,unifS"
        assert lines[1] == "B,0.5"
        assert lines[2] == "BCR,0.1"
