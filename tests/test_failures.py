"""Tests for fail-stop failures, recovery, and the protocol's reaction."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.cluster.failures import FailureInjector, unreachable_nodes
from repro.namespace.generators import balanced_tree
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import uzipf_stream


def make(n_servers=16, levels=7, **over):
    ns = balanced_tree(levels=levels)
    defaults = dict(n_servers=n_servers, seed=8, digest_probe_limit=1,
                    cache_slots=10)
    defaults.update(over)
    cfg = SystemConfig.replicated(**defaults)
    return ns, build_system(ns, cfg)


class TestFailStop:
    def test_failed_server_receives_nothing(self):
        ns, system = make()
        inj = FailureInjector(system)
        inj.fail(3)
        dest = next(iter(system.peers[3].owned))
        system.inject(0, dest)
        system.engine.run(until=5.0)
        assert system.peers[3].n_processed == 0
        # the query died somewhere: lost in transit or TTL'd
        assert system.stats.n_completed == 0
        assert system.stats.n_dropped >= 1

    def test_lost_queries_accounted_as_drops(self):
        ns, system = make()
        inj = FailureInjector(system)
        inj.fail(3)
        dest = next(iter(system.peers[3].owned))
        for _ in range(5):
            system.inject(0, dest)
            system.engine.run(until=system.engine.now + 2.0)
        assert system.stats.drop_reasons.get("failure", 0) >= 1

    def test_in_flight_messages_lost(self):
        ns, system = make(net_delay=1.0)
        inj = FailureInjector(system)
        dest = next(iter(system.peers[3].owned))
        system.inject(0, dest)  # message now in flight toward 3's subtree
        system.engine.run(until=0.5)
        inj.fail(3)
        system.engine.run(until=10.0)
        assert system.peers[3].n_processed == 0

    def test_unaffected_traffic_still_completes(self):
        ns, system = make()
        inj = FailureInjector(system)
        inj.fail(3)
        # a lookup entirely within server 0's owned set
        dest = next(iter(system.peers[0].owned))
        system.inject(0, dest)
        system.engine.run(until=2.0)
        assert system.stats.n_completed == 1

    def test_fail_random_respects_protection(self):
        ns, system = make()
        inj = FailureInjector(system)
        victims = inj.fail_random(5, protect=[0, 1])
        assert len(victims) == 5
        assert 0 not in victims and 1 not in victims
        assert inj.failed == set(victims)

    def test_double_fail_idempotent(self):
        ns, system = make()
        inj = FailureInjector(system)
        inj.fail(3)
        inj.fail(3)
        assert inj.n_failures == 1


class TestRecovery:
    def test_recovered_server_serves_again(self):
        ns, system = make()
        inj = FailureInjector(system)
        inj.fail(3)
        system.engine.run(until=1.0)
        inj.recover(3)
        dest = next(iter(system.peers[3].owned))
        system.inject(0, dest)
        system.engine.run(until=system.engine.now + 5.0)
        assert system.stats.n_completed == 1

    def test_recovery_clears_queue_and_service(self):
        ns, system = make()
        inj = FailureInjector(system)
        p = system.peers[3]
        dest = next(iter(p.owned))
        # fill its queue then fail it mid-service
        for i in range(4):
            p.inject(dest, qid=100 + i)
        inj.fail(3)
        system.engine.run(until=2.0)
        inj.recover(3)
        assert len(p.queue) == 0
        assert not p.in_service
        assert not p.meter.busy

    def test_recover_all(self):
        ns, system = make()
        inj = FailureInjector(system)
        inj.fail_random(4)
        inj.recover_all()
        assert not inj.failed


class TestResilienceThroughReplication:
    def test_replicas_keep_nodes_reachable_after_owner_failure(self):
        """A failed owner's nodes stay resolvable via their replicas --
        the routing-state availability the paper's replication targets."""
        ns, system = make()
        inj = FailureInjector(system)
        owner = system.peers[3]
        node = next(iter(owner.owned))
        other = system.peers[5]
        other.install_replica(owner.build_replica_payload(node), 0.0)
        inj.fail(3)
        # make the replica known at the source so routing can use it
        src = system.peers[0]
        src.cache.put(node, [5])
        system.inject(0, node)
        system.engine.run(until=5.0)
        assert system.stats.n_completed == 1

    def test_unreachable_nodes_detection(self):
        ns, system = make()
        inj = FailureInjector(system)
        inj.fail(3)
        holes = unreachable_nodes(system)
        assert set(holes) == set(system.peers[3].owned)
        inj.recover(3)
        assert unreachable_nodes(system) == []

    def test_system_survives_failures_under_load(self):
        """Kill a quarter of the servers mid-run: the system keeps
        completing a large share of queries and keeps adapting."""
        ns, system = make(n_servers=16, levels=8)
        inj = FailureInjector(system)
        rate = 0.3 * 16 / (0.005 * 3.5)
        spec = uzipf_stream(rate, 20.0, alpha=1.0, seed=4)
        driver = WorkloadDriver(system, spec)
        driver.start()
        system.run_until(8.0)
        inj.fail_random(4, protect=[0])
        system.run_until(spec.duration + 3.0)
        s = system.stats
        assert s.n_completed > 0.5 * s.n_injected
        # replication sessions with dead partners were aborted, not hung
        for p in system.peers:
            if not p.failed:
                assert not p.repl.in_session or p.repl.next_allowed >= 0

    def test_session_timeout_aborts_on_dead_partner(self):
        ns, system = make(session_timeout=0.5, bootstrap_known_peers=0)
        inj = FailureInjector(system)
        src = system.peers[0]
        src.known_loads[3] = (0.0, 0.0)
        inj.fail(3)
        src.meter.apply_adjustment(1.0)
        assert src.repl.maybe_trigger(0.0)
        assert src.repl.in_session
        system.engine.run(until=2.0)
        assert not src.repl.in_session
        assert src.repl.n_sessions_aborted == 1


class TestStaticReplicationBaseline:
    def test_top_levels_replicated(self):
        from repro.core.static_replication import (
            replicate_top_levels,
            static_replica_count,
        )

        ns, system = make()
        placed = replicate_top_levels(system, depth_limit=2, copies=3, seed=1)
        assert len(placed) == 7  # levels 0..2 of a binary tree
        for node, servers in placed.items():
            assert ns.depth[node] <= 2
            for sid in servers:
                assert system.peers[sid].hosts(node)
        assert static_replica_count(ns, 2, 3) == 21

    def test_static_does_not_count_as_adaptive_creation(self):
        from repro.core.static_replication import replicate_top_levels

        ns, system = make()
        replicate_top_levels(system, depth_limit=1, copies=2, seed=1)
        assert system.stats.n_replicas_created == 0
        assert system.total_replicas() > 0

    def test_record_stats_option(self):
        from repro.core.static_replication import replicate_top_levels

        ns, system = make()
        placed = replicate_top_levels(system, depth_limit=0, copies=2,
                                      seed=1, record_stats=True)
        assert system.stats.n_replicas_created == len(placed[0])

    def test_validation(self):
        from repro.core.static_replication import replicate_top_levels

        ns, system = make()
        with pytest.raises(ValueError):
            replicate_top_levels(system, depth_limit=-1)
        with pytest.raises(ValueError):
            replicate_top_levels(system, copies=0)
