"""Tests for fairness and adaptation-speed metrics."""

import pytest

from repro.analysis.fairness import (
    jain_index,
    load_imbalance,
    spike_recovery_times,
)


class TestJain:
    def test_perfect_balance(self):
        assert jain_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_single_loaded(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        vals = [0.9, 0.1, 0.4, 0.7]
        idx = jain_index(vals)
        assert 1.0 / len(vals) <= idx <= 1.0

    def test_scale_invariant(self):
        a = [1.0, 2.0, 3.0]
        b = [10.0, 20.0, 30.0]
        assert jain_index(a) == pytest.approx(jain_index(b))

    def test_zero_population_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])


class TestImbalance:
    def test_balanced(self):
        assert load_imbalance([0.3, 0.3]) == pytest.approx(1.0)

    def test_skewed(self):
        assert load_imbalance([1.0, 0.0]) == pytest.approx(2.0)

    def test_zero(self):
        assert load_imbalance([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance([])


class TestSpikeRecovery:
    def test_immediate_recovery(self):
        series = [0.0] * 10
        assert spike_recovery_times(series, [3.0], threshold=0.1) == [0.0]

    def test_recovery_after_spike(self):
        series = [0, 0, 0, 9, 8, 7, 0, 0, 0, 0]
        out = spike_recovery_times(series, [3.0], threshold=1.0)
        assert out == [3.0]

    def test_single_bin_dip_skipped(self):
        # dips to 0 at bin 5 but spikes again at 6: not recovered yet
        series = [0, 0, 0, 9, 8, 0, 7, 0, 0, 0]
        out = spike_recovery_times(series, [3.0], threshold=1.0)
        assert out == [4.0]

    def test_never_recovers(self):
        series = [5.0] * 6
        assert spike_recovery_times(series, [1.0], threshold=1.0) == [None]

    def test_event_beyond_series(self):
        assert spike_recovery_times([0.0], [10.0], threshold=1.0) == [None]

    def test_multiple_events(self):
        series = [0, 9, 0, 0, 9, 9, 0, 0]
        out = spike_recovery_times(series, [1.0, 4.0], threshold=1.0)
        assert out == [1.0, 2.0]

    def test_bin_width(self):
        series = [0, 9, 0, 0]
        out = spike_recovery_times(series, [0.5], threshold=1.0,
                                   bin_width=0.5)
        assert out == [0.5]

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            spike_recovery_times([1.0], [0.0], threshold=-1.0)


class TestSystemFairness:
    def test_utilization_fairness_on_live_system(self):
        from repro.analysis.fairness import utilization_fairness
        from repro.cluster.builder import build_system
        from repro.cluster.config import SystemConfig
        from repro.namespace.generators import balanced_tree
        from repro.workload.arrivals import WorkloadDriver
        from repro.workload.streams import unif_stream

        ns = balanced_tree(levels=6)
        system = build_system(
            ns, SystemConfig.replicated(n_servers=8, seed=3,
                                        digest_probe_limit=1)
        )
        WorkloadDriver(system, unif_stream(300.0, 8.0, seed=3)).run()
        f = utilization_fairness(system)
        assert 0.0 < f["jain_of_mean_series"] <= 1.0
        assert f["peak_imbalance"] >= 1.0
