"""Unit tests for the live-mode wire codec: framing, partial-read
reassembly, and the restricted payload decoder."""

import pickle

import pytest

from repro.namespace.meta import NodeMeta
from repro.net.frame import (
    HEADER_SIZE,
    MAX_FRAME,
    FrameError,
    FrameReader,
    decode_message,
    encode_frame,
    encode_message,
    register_wire_type,
)
from repro.net.message import (
    Advertisement,
    ClientLookup,
    ClientLookupReply,
    DataReply,
    ProbeMessage,
    QueryMessage,
    ReplicaPayload,
    ResponseMessage,
    TransferMessage,
)


def make_query():
    q = QueryMessage(7, 42, 1, 0.125)
    q.hops = 3
    q.sender = 5
    q.sender_load = 0.75
    q.sender_digest = (4, 1 << 200)  # big-int bloom snapshot
    q.dest_map = [1, 2, 3]
    q.path = [(3, 1), (5, 2)]
    q.adverts = [Advertisement(9, 4)]
    q.stale_hops = 1
    q.via = 9
    return q


# ----------------------------------------------------------------------
# codec fidelity
# ----------------------------------------------------------------------

def test_query_roundtrip_preserves_structure():
    q2 = decode_message(encode_message(make_query()))
    assert (q2.qid, q2.dest, q2.origin, q2.created_at) == (7, 42, 1, 0.125)
    assert q2.hops == 3 and q2.stale_hops == 1 and q2.via == 9
    assert q2.dest_map == [1, 2, 3]
    # tuples must stay tuples: routing code unpacks path pairs and
    # compares digest snapshots structurally
    assert q2.path == [(3, 1), (5, 2)]
    assert all(isinstance(p, tuple) for p in q2.path)
    assert q2.sender_digest == (4, 1 << 200)
    assert isinstance(q2.sender_digest, tuple)
    assert q2.adverts[0].node == 9 and q2.adverts[0].server == 4


def test_response_and_payload_roundtrip():
    resp = ResponseMessage(make_query(), resolver=2, dest_map=[2, 0],
                           meta_version=5)
    r2 = decode_message(encode_message(resp))
    assert r2.resolver == 2 and r2.dest_map == [2, 0]
    assert r2.meta_version == 5 and r2.qid == 7

    payload = ReplicaPayload(9, 2, [1, 2], {8: [1], 10: [2]})
    t = TransferMessage(1, 0, [payload], load_delta=0.5)
    t2 = decode_message(encode_message(t))
    assert t2.load_delta == 0.5
    assert t2.payloads[0].node == 9
    assert t2.payloads[0].context == {8: [1], 10: [2]}


def test_node_meta_roundtrip():
    meta = NodeMeta()
    meta.add_keywords(["alpha", "beta"])
    meta.set_attribute("k", "v")
    reply = DataReply(1, 42, 3)
    reply.meta = meta
    m2 = decode_message(encode_message(reply)).meta
    assert m2.keywords == {"alpha", "beta"}
    assert m2.attributes == {"k": "v"}
    assert m2.version == meta.version


def test_client_plane_roundtrip():
    cl = decode_message(encode_message(ClientLookup(11, 42)))
    assert (cl.cqid, cl.node) == (11, 42)
    rep = ClientLookupReply(11, 42, True, servers=[3, 1], meta_version=2,
                            hops=4, latency=0.25)
    r2 = decode_message(encode_message(rep))
    assert r2.ok and r2.servers == [3, 1] and r2.hops == 4
    assert r2.latency == 0.25


# ----------------------------------------------------------------------
# restricted decoding
# ----------------------------------------------------------------------

class NotAWireType:
    pass


def test_encode_rejects_unregistered_types():
    with pytest.raises(FrameError):
        encode_message(NotAWireType())
    with pytest.raises(FrameError):
        encode_message({"just": "a dict"})


def test_decode_refuses_disallowed_globals():
    with pytest.raises(FrameError):
        decode_message(pickle.dumps(NotAWireType()))
    # even stdlib callables must not resolve
    with pytest.raises(FrameError):
        decode_message(pickle.dumps(print))


def test_decode_refuses_garbage():
    with pytest.raises(FrameError):
        decode_message(b"\x00\x01not a pickle")


@register_wire_type
class ExtraWireType:
    def __init__(self):
        self.x = 1


def test_register_wire_type_admits_class():
    e2 = decode_message(encode_message(ExtraWireType()))
    assert e2.x == 1


# ----------------------------------------------------------------------
# framing and reassembly
# ----------------------------------------------------------------------

def test_frame_layout():
    frame = encode_frame(ProbeMessage(1, 2, 0.5))
    length = int.from_bytes(frame[:HEADER_SIZE], "big")
    assert length == len(frame) - HEADER_SIZE
    msg = decode_message(frame[HEADER_SIZE:])
    assert (msg.session, msg.src, msg.src_load) == (1, 2, 0.5)


def test_reader_single_feed_multiple_frames():
    msgs = [ProbeMessage(i, i + 1, 0.1 * i) for i in range(5)]
    stream = b"".join(encode_frame(m) for m in msgs)
    reader = FrameReader()
    payloads = reader.feed(stream)
    assert len(payloads) == 5
    assert [decode_message(p).session for p in payloads] == [0, 1, 2, 3, 4]
    assert reader.pending() == 0


def test_reader_byte_by_byte_reassembly():
    frames = b"".join(
        encode_frame(ClientLookup(i, 100 + i)) for i in range(3)
    )
    reader = FrameReader()
    out = []
    for i in range(len(frames)):
        out.extend(reader.feed(frames[i:i + 1]))
    assert [decode_message(p).cqid for p in out] == [0, 1, 2]
    assert reader.pending() == 0
    assert reader.n_frames == 3


def test_reader_split_inside_header_and_payload():
    frame = encode_frame(make_query())
    reader = FrameReader()
    # half a header first: nothing completes, bytes are buffered
    assert reader.feed(frame[:2]) == []
    assert reader.pending() == 2
    # up to mid-payload: still nothing
    mid = HEADER_SIZE + (len(frame) - HEADER_SIZE) // 2
    assert reader.feed(frame[2:mid]) == []
    # the rest completes exactly one frame
    payloads = reader.feed(frame[mid:])
    assert len(payloads) == 1
    assert decode_message(payloads[0]).qid == 7


def test_reader_frame_boundary_straddles_feeds():
    a = encode_frame(ProbeMessage(1, 0, 0.0))
    b = encode_frame(ProbeMessage(2, 0, 0.0))
    reader = FrameReader()
    # feed a + first 3 bytes of b
    first = reader.feed(a + b[:3])
    assert len(first) == 1 and decode_message(first[0]).session == 1
    second = reader.feed(b[3:])
    assert len(second) == 1 and decode_message(second[0]).session == 2


def test_reader_rejects_oversized_header():
    bogus = (MAX_FRAME + 1).to_bytes(4, "big") + b"x"
    with pytest.raises(FrameError):
        FrameReader().feed(bogus)


def test_reader_custom_limit():
    reader = FrameReader(max_frame=8)
    small = encode_frame(ProbeMessage(1, 2, 0.5))
    with pytest.raises(FrameError):
        reader.feed(small)  # pickle payload is far beyond 8 bytes
