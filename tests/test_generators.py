"""Unit tests for namespace generators."""

import hashlib
import random

import pytest

from repro.namespace.generators import (
    _FrontierSampler,
    assign_nodes_to_servers,
    balanced_tree,
    coda_like_tree,
    path_tree,
    random_tree,
    university_tree,
)


def _parent_digest(ns) -> str:
    return hashlib.sha256(",".join(map(str, ns.parent)).encode()).hexdigest()


class TestBalancedTree:
    def test_binary_sizes(self):
        ns = balanced_tree(levels=4, arity=2)
        assert len(ns) == 2**5 - 1
        assert ns.max_depth == 4
        assert ns.level_sizes() == [1, 2, 4, 8, 16]

    def test_ternary(self):
        ns = balanced_tree(levels=2, arity=3)
        assert len(ns) == 1 + 3 + 9

    def test_zero_levels(self):
        ns = balanced_tree(levels=0)
        assert len(ns) == 1

    def test_paper_ns_shape(self):
        """N_S: levels 0..14 of a binary tree = 32767 nodes (Fig. 7)."""
        ns = balanced_tree(levels=14)
        assert len(ns) == 32767
        assert ns.max_depth == 14

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            balanced_tree(-1)
        with pytest.raises(ValueError):
            balanced_tree(3, arity=0)


class TestPathTree:
    def test_shape(self):
        ns = path_tree(10)
        assert len(ns) == 11
        assert ns.max_depth == 10
        assert all(len(c) <= 1 for c in ns.children)


class TestRandomTree:
    def test_size_and_determinism(self):
        a = random_tree(200, seed=3)
        b = random_tree(200, seed=3)
        assert len(a) == len(b) == 200
        assert a.parent == b.parent

    def test_different_seeds_differ(self):
        a = random_tree(200, seed=3)
        b = random_tree(200, seed=4)
        assert a.parent != b.parent

    def test_preferential_attachment_skews_fanout(self):
        uni = random_tree(2000, seed=1, attach_power=0.0)
        pref = random_tree(2000, seed=1, attach_power=2.0)
        max_uni = max(len(c) for c in uni.children)
        max_pref = max(len(c) for c in pref.children)
        assert max_pref > max_uni

    def test_preferential_fingerprints_pinned(self):
        """Incremental weight maintenance reproduces the original
        full-rebuild draws exactly (digests recorded pre-refactor)."""
        assert _parent_digest(random_tree(1000, seed=11, attach_power=1.2)) == (
            "89ac52826b6f4e28947c3c82175bcfca2052c5cf4084f34b04c919cda37b6387"
        )
        assert _parent_digest(random_tree(600, seed=2, attach_power=0.7)) == (
            "cbb7a2470a1c6dc649e37d4de19185b0c04d9c643454a5bed2160ccae3623001"
        )


class TestCodaLikeTree:
    def test_exact_size(self):
        ns = coda_like_tree(n_nodes=5000, seed=7)
        assert len(ns) == 5000

    def test_deterministic(self):
        a = coda_like_tree(n_nodes=3000, seed=7)
        b = coda_like_tree(n_nodes=3000, seed=7)
        assert a.parent == b.parent

    def test_file_system_shape(self):
        """Mostly leaves, skewed fan-out, depth profile unlike a
        balanced binary tree (which puts ~half its nodes at max depth)."""
        ns = coda_like_tree(n_nodes=20000, seed=7)
        leaf_frac = ns.n_leaves / len(ns)
        assert leaf_frac > 0.6
        sizes = ns.level_sizes()
        # deepest level should NOT hold the majority of nodes
        assert sizes[-1] < len(ns) / 2
        fanouts = [len(c) for c in ns.children if c]
        assert max(fanouts) > 3 * (sum(fanouts) / len(fanouts))

    def test_fingerprint_pinned(self):
        """The O(log n) frontier sampler reproduces the original
        ``list.pop(randrange)`` selection sequence (pre-refactor digest)."""
        assert _parent_digest(coda_like_tree(n_nodes=8000, seed=42)) == (
            "9d1235db1d30e834cd70a0d425ffd369d59c683f591553df6194312ade2d489e"
        )


class TestFrontierSampler:
    def test_matches_list_semantics(self):
        """pop(i)/append behave exactly like a plain list across a long
        random interleaving (including compaction thresholds)."""
        rng = random.Random(123)
        sampler = _FrontierSampler()
        model = []
        serial = 0
        for _ in range(20000):
            if model and rng.random() < 0.55:
                idx = rng.randrange(len(model))
                assert sampler.pop(idx) == model.pop(idx)
            else:
                item = (serial, serial % 7)
                serial += 1
                sampler.append(item)
                model.append(item)
            assert len(sampler) == len(model)
        while model:
            assert sampler.pop(0) == model.pop(0)

    def test_pop_out_of_range(self):
        s = _FrontierSampler()
        with pytest.raises(IndexError):
            s.pop(0)
        s.append((1, 1))
        with pytest.raises(IndexError):
            s.pop(1)


class TestUniversityTree:
    def test_fig1_names_exist(self):
        ns = university_tree()
        for name in (
            "/university/private/people",
            "/university/public/people/students/Steve",
            "/university/private/people/staff/Mary",
        ):
            assert ns.id_of(name) >= 0

    def test_fig1_route(self):
        """The base route for /university/private from the owner of
        /university/public/people/students climbs to /university then
        descends (paper Fig. 1, without cache/replica shortcuts)."""
        ns = university_tree()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private")
        path = [ns.name_of(v) for v in ns.route_path(src, dst)]
        assert path == [
            "/university/public/people/students",
            "/university/public/people",
            "/university/public",
            "/university",
            "/university/private",
        ]


class TestAssignment:
    def test_balanced_partition(self):
        ns = balanced_tree(levels=6)  # 127 nodes
        owner = assign_nodes_to_servers(ns, 10, seed=5)
        counts = [owner.count(s) for s in range(10)]
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == len(ns)

    def test_every_server_owns_a_node(self):
        ns = balanced_tree(levels=5)  # 63 nodes
        owner = assign_nodes_to_servers(ns, 63, seed=5)
        assert set(owner) == set(range(63))

    def test_deterministic(self):
        ns = balanced_tree(levels=5)
        assert assign_nodes_to_servers(ns, 7, seed=1) == assign_nodes_to_servers(
            ns, 7, seed=1
        )

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            assign_nodes_to_servers(balanced_tree(2), 0)
