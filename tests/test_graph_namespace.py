"""Tests for graph-rooted (DAG) namespaces."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.namespace.graph import GraphNamespace, mesh_of_trees
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import unif_stream


class TestConstruction:
    def test_cross_links_extend_neighbors(self):
        ns = balanced_tree(levels=3)
        a, b = ns.nodes_at_depth(3)[0], ns.nodes_at_depth(3)[-1]
        g = GraphNamespace.from_tree(ns, [(a, b)])
        assert b in g.neighbors(a)
        assert a in g.neighbors(b)
        assert g.n_cross_links == 1

    def test_tree_neighbors_unchanged(self):
        ns = balanced_tree(levels=3)
        a, b = ns.nodes_at_depth(3)[0], ns.nodes_at_depth(3)[-1]
        g = GraphNamespace.from_tree(ns, [(a, b)])
        assert g.neighbors_tree(a) == ns.neighbors(a)

    def test_duplicate_and_tree_edges_skipped(self):
        ns = balanced_tree(levels=2)
        child = ns.children[0][0]
        g = GraphNamespace.from_tree(ns, [(0, child), (1, 2), (1, 2)])
        assert g.n_cross_links == 1  # (0, child) is a tree edge; dup dropped

    def test_rejects_bad_links(self):
        ns = balanced_tree(levels=2)
        with pytest.raises(ValueError):
            GraphNamespace.from_tree(ns, [(0, 99)])
        with pytest.raises(ValueError):
            GraphNamespace.from_tree(ns, [(1, 1)])

    def test_names_and_distance_are_tree_based(self):
        ns = balanced_tree(levels=3)
        a, b = ns.nodes_at_depth(3)[0], ns.nodes_at_depth(3)[-1]
        g = GraphNamespace.from_tree(ns, [(a, b)])
        assert g.distance(a, b) == ns.distance(a, b)  # spanning-tree metric
        assert g.name_of(a) == ns.name_of(a)


class TestGraphDistance:
    def test_cross_link_shortens_graph_distance(self):
        ns = balanced_tree(levels=4)
        a = ns.nodes_at_depth(4)[0]
        b = ns.nodes_at_depth(4)[-1]
        g = GraphNamespace.from_tree(ns, [(a, b)])
        assert g.graph_distance(a, b) == 1
        assert g.distance(a, b) == 8  # tree metric unchanged

    def test_graph_distance_bounded_by_tree(self):
        g = mesh_of_trees(levels=4)
        for a in (3, 7, 20):
            for b in (5, 9, 28):
                assert g.graph_distance(a, b) <= g.distance(a, b)

    def test_identity(self):
        g = mesh_of_trees(levels=3)
        assert g.graph_distance(4, 4) == 0


class TestMeshOfTrees:
    def test_ring_links_exist(self):
        g = mesh_of_trees(levels=4, link_depth=2)
        ring = g.nodes_at_depth(2)
        # stride-2 pairs on a 4-ring collapse to 2 unique links
        assert g.n_cross_links >= len(ring) // 2
        for v in ring:
            assert any(u in g.cross.get(v, ()) for u in ring)


class TestRoutingOnGraph:
    def _system(self):
        g = mesh_of_trees(levels=6, link_depth=2)
        cfg = SystemConfig.replicated(n_servers=8, seed=17,
                                      digest_probe_limit=1)
        return g, build_system(g, cfg)

    def test_contexts_include_cross_links(self):
        g, system = self._system()
        ring = g.nodes_at_depth(2)
        v = ring[0]
        owner = system.peers[system.owner[v]]
        for nbr in g.neighbors(v):
            assert nbr in owner.maps

    def test_lookups_complete_on_graph_namespace(self):
        g, system = self._system()
        drv = WorkloadDriver(system, unif_stream(200.0, 6.0, seed=2))
        drv.run()
        assert system.stats.completion_fraction > 0.95

    def test_cross_links_shorten_routes(self):
        """Same workload, same seed: the graph-rooted namespace routes
        in at most as many hops as the plain tree (cross links only add
        shortcut candidates)."""
        def run(ns):
            cfg = SystemConfig.replicated(n_servers=8, seed=17,
                                          digest_probe_limit=1)
            system = build_system(ns, cfg)
            WorkloadDriver(system, unif_stream(200.0, 8.0, seed=2)).run()
            return system.stats.mean_hops

        tree_hops = run(balanced_tree(levels=6))
        graph_hops = run(mesh_of_trees(levels=6, link_depth=2))
        assert graph_hops <= tree_hops + 0.05

    def test_replica_of_cross_linked_node_carries_links(self):
        g, system = self._system()
        ring = g.nodes_at_depth(2)
        v = ring[0]
        owner = system.peers[system.owner[v]]
        other = system.peers[(owner.sid + 1) % 8]
        other.install_replica(owner.build_replica_payload(v), 0.0)
        for nbr in g.neighbors(v):
            assert nbr in other.maps
