"""Integration tests: whole-system behaviours the paper claims.

These run small but complete simulations (tens of thousands of queries)
and assert the protocol-level claims of the evaluation section at a
qualitative level; the benchmark suite covers the full figures.
"""

import pytest

from repro.analysis.series import rate_series
from repro.analysis.summary import run_summary
from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import cuzipf_stream


N_SERVERS = 24
LEVELS = 9  # 1023 nodes


def run(preset_factory, spec, seed=7, **over):
    ns = balanced_tree(levels=LEVELS)
    defaults = dict(n_servers=N_SERVERS, seed=seed, cache_slots=10,
                    digest_probe_limit=1)
    defaults.update(over)
    cfg = preset_factory(**defaults)
    system = build_system(ns, cfg)
    driver = WorkloadDriver(system, spec)
    driver.start()
    system.run_until(spec.duration + 3.0)
    return system


RATE = 0.4 * N_SERVERS / (0.005 * 3.5)  # utilisation ~0.4


class TestReplicationHelps:
    """Fig. 5's core claim at integration-test size."""

    @pytest.fixture(scope="class")
    def systems(self):
        spec = cuzipf_stream(RATE, alpha=1.5, warmup=4, phase=4, n_phases=2,
                             seed=3)
        return {
            "B": run(SystemConfig.base, spec),
            "BC": run(SystemConfig.caching, spec),
            "BCR": run(SystemConfig.replicated, spec),
        }

    def test_replication_reduces_drops(self, systems):
        d = {k: s.stats.drop_fraction for k, s in systems.items()}
        assert d["BCR"] < d["B"]
        assert d["BCR"] < d["BC"]
        assert d["BCR"] < 0.5 * d["B"]

    def test_base_drops_substantially_under_skew(self, systems):
        assert systems["B"].stats.drop_fraction > 0.02

    def test_only_bcr_creates_replicas(self, systems):
        assert systems["B"].stats.n_replicas_created == 0
        assert systems["BC"].stats.n_replicas_created == 0
        assert systems["BCR"].stats.n_replicas_created > 0

    def test_caching_reduces_hops(self, systems):
        assert systems["BC"].stats.mean_hops < systems["B"].stats.mean_hops

    def test_control_traffic_two_orders_below_queries(self, systems):
        """Paper section 4.2: load-balancing messages are at least two
        orders of magnitude fewer than queries."""
        s = systems["BCR"]
        assert s.transport.n_control_sent < s.transport.n_sent / 10
        summary = run_summary(s)
        assert summary["control_to_query_ratio"] < 0.1


class TestAdaptation:
    """Fig. 3/4: spikes at popularity reshuffles, fast recovery."""

    @pytest.fixture(scope="class")
    def system(self):
        spec = cuzipf_stream(RATE, alpha=1.25, warmup=5, phase=5,
                             n_phases=3, seed=11)
        return run(SystemConfig.replicated, spec)

    def test_replica_creation_spikes_after_reshuffles(self, system):
        per_sec = rate_series(system, "replicas_created", 21)
        # creations occur both in warm-up (hierarchical stabilisation)
        # and after at least one reshuffle (5s, 10s, 15s boundaries)
        assert sum(per_sec[:6]) > 0
        assert sum(per_sec[6:]) > 0

    def test_drop_fraction_bounded_under_shifts(self, system):
        """The paper's headline: query drops stay bounded (a few %)
        even when heavily skewed input reshuffles repeatedly."""
        assert system.stats.drop_fraction < 0.10

    def test_most_queries_complete(self, system):
        assert system.stats.completion_fraction > 0.9


class TestLoadBalance:
    """Fig. 6: max load transient, mean tracks the utilisation target."""

    @pytest.fixture(scope="class")
    def system(self):
        spec = cuzipf_stream(RATE, alpha=1.0, warmup=5, phase=5,
                             n_phases=2, seed=5)
        return run(SystemConfig.replicated, spec)

    def test_mean_load_near_target(self, system):
        means = system.stats.loads.means()
        steady = means[5:]
        avg = sum(steady) / len(steady)
        assert 0.15 < avg < 0.6

    def test_max_load_exceeds_mean_transiently(self, system):
        means = system.stats.loads.means()
        maxima = system.stats.loads.maxima()
        assert max(maxima) > max(means)

    def test_replicas_spread_across_servers(self, system):
        hosts = [len(p.replicas) for p in system.peers]
        assert sum(1 for h in hosts if h > 0) >= 3


class TestSoftStateConsistency:
    """Soft state may be stale but the system self-corrects."""

    @pytest.fixture(scope="class")
    def system(self):
        spec = cuzipf_stream(RATE, alpha=1.5, warmup=4, phase=4, n_phases=3,
                             seed=13)
        # low rfact forces churn: creations AND evictions
        return run(SystemConfig.replicated, spec, rfact=0.1)

    def test_churn_occurred(self, system):
        assert system.stats.replicas_evicted.total() > 0

    def test_rfact_respected_everywhere(self, system):
        for p in system.peers:
            assert len(p.replicas) <= max(1, int(0.1 * len(p.owned)))

    def test_stale_hops_exist_but_rare(self, system):
        summary = run_summary(system)
        assert summary["stale_hop_rate"] < 0.2

    def test_queries_still_complete_under_churn(self, system):
        assert system.stats.completion_fraction > 0.8

    def test_digest_versions_advance(self, system):
        assert any(p.digest.version > len(p.owned) for p in system.peers)


class TestInvariants:
    """Structural invariants that must hold after any run."""

    @pytest.fixture(scope="class")
    def system(self):
        spec = cuzipf_stream(RATE, alpha=1.0, warmup=4, phase=4, n_phases=2,
                             seed=17)
        return run(SystemConfig.replicated, spec)

    def test_ownership_never_changes(self, system):
        owned = sorted(v for p in system.peers for v in p.owned)
        assert owned == list(range(len(system.ns)))

    def test_hosted_list_consistent(self, system):
        for p in system.peers:
            assert sorted(p.hosted_list) == sorted(
                list(p.owned) + list(p.replicas)
            )

    def test_table1_audit_passes(self, system):
        from repro.server.state import audit_peer

        for p in system.peers:
            audit_peer(p)

    def test_accounting_closes(self, system):
        s = system.stats
        # every query is either completed, dropped, or still in flight
        assert s.n_completed + s.n_dropped <= s.n_injected
        assert s.n_completed + s.n_dropped >= 0.98 * s.n_injected

    def test_cache_bounded(self, system):
        for p in system.peers:
            assert len(p.cache) <= p.cfg.cache_slots

    def test_maps_bounded_by_rmap(self, system):
        for p in system.peers:
            for node, entry in p.maps.items():
                assert len(entry) <= p.cfg.rmap + 1  # +1 for self entry
