"""Sim-vs-live conformance: the same scripted trace through
:class:`~repro.runtime.sim_runtime.SimRuntime` and
:class:`~repro.runtime.async_runtime.AsyncRuntime` (UDS, one process)
must produce identical lookup outcomes, hop counts, and replica
placements.

The trace is strictly sequential -- each lookup completes (and the
wire settles) before the next is issued -- so every peer sees the same
message order in both modes and draws from its RNG streams in the same
sequence.  Maintenance ticks stay off: load windows measure *wall*
time under AsyncRuntime, which is exactly the part that legitimately
differs between modes (DESIGN.md section 14).

Also here: client robustness against a stalled peer -- per-attempt
timeouts, reissue-on-timeout, and ``ok=False`` deadline replies
consuming an attempt.
"""

import asyncio
import os
import random
import tempfile

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.net.frame import FrameReader, decode_message, encode_frame
from repro.net.message import ClientLookupReply, TransferMessage
from repro.runtime.async_client import HomeConnection
from repro.runtime.async_runtime import AsyncRuntime
from repro.runtime.async_service import LiveService, build_live_system
from repro.runtime.async_wire import AsyncWire, uds_addresses

LEVELS = 6
N_SERVERS = 4
SEED = 7
N_OPS = 30


def make_cfg():
    # fast service times keep the live (real-time) half under a second
    return SystemConfig.replicated(
        n_servers=N_SERVERS, seed=SEED, cache_slots=8, service_mean=0.002
    )


def make_ops():
    rng = random.Random(1234)
    n_nodes = 2 ** (LEVELS + 1) - 1
    return [
        (rng.randrange(N_SERVERS), rng.randrange(1, n_nodes))
        for _ in range(N_OPS)
    ]


def pick_transfers(system):
    """Scripted replica installs: (source sid, target sid, node)."""
    owned0 = sorted(system.peers[0].owned)
    owned1 = sorted(system.peers[1].owned)
    return [
        (0, 1, owned0[0]),
        (0, 2, owned0[1]),
        (1, 3, owned1[0]),
    ]


def followup_ops(transfers):
    """Post-transfer lookups for the shipped nodes, from every server:
    resolution must now see the replicas identically in both modes."""
    return [(s, node) for _, _, node in transfers for s in range(N_SERVERS)]


def outcome(reply_or_resp, servers):
    return (reply_or_resp, tuple(servers))


# ----------------------------------------------------------------------
# the two trace executors
# ----------------------------------------------------------------------

def sim_trace():
    ns = balanced_tree(levels=LEVELS)
    system = build_system(ns, make_cfg())
    lookups = []

    def do_lookup(src, dest):
        captured = []
        qid = system.inject(src, dest)
        system.peers[src].client_hooks[("lookup", qid)] = captured.append
        system.engine.run()  # drain: the trace is sequential
        assert captured, f"sim lookup ({src}->{dest}) never completed"
        r = captured[0]
        lookups.append((r.dest, r.hops, tuple(r.dest_map), r.meta_version))

    ops = make_ops()
    for src, dest in ops:
        do_lookup(src, dest)

    placements = []
    transfers = pick_transfers(system)
    for i, (src, dst, node) in enumerate(transfers):
        payload = system.peers[src].store.build_payload(node)
        assert payload is not None
        system.runtime.send(dst, TransferMessage(900 + i, src, [payload]))
        system.engine.run()
        placements.append(tuple(sorted(system.hosts_of(node))))

    for src, dest in followup_ops(transfers):
        do_lookup(src, dest)
    return lookups, placements


async def _live_trace():
    ns = balanced_tree(levels=LEVELS)
    loop = asyncio.get_running_loop()
    lookups = []
    with tempfile.TemporaryDirectory() as sock_dir:
        addresses = uds_addresses(sock_dir, N_SERVERS)
        rt = AsyncRuntime(loop)
        wire = AsyncWire(loop, addresses)
        system = build_live_system(ns, make_cfg(), rt, wire)
        LiveService(system, lookup_deadline=10.0).attach(wire)
        await wire.start_listeners()
        conns = {}

        async def do_lookup(src, dest):
            conn = conns.get(src)
            if conn is None:
                conn = HomeConnection(loop, addresses[src])
                await conn.connect()
                conns[src] = conn
            r = await conn.lookup(dest, timeout=10.0)
            assert r is not None and r.ok, f"live lookup ({src}->{dest}) failed"
            lookups.append((r.node, r.hops, tuple(r.servers), r.meta_version))
            # let trailing control frames (adverts, acks) land before
            # the next op so per-peer message order matches the sim
            await asyncio.sleep(0.01)

        ops = make_ops()
        for src, dest in ops:
            await do_lookup(src, dest)

        placements = []
        transfers = pick_transfers(system)
        for i, (src, dst, node) in enumerate(transfers):
            payload = system.peers[src].store.build_payload(node)
            assert payload is not None
            rt.send(dst, TransferMessage(900 + i, src, [payload]))
            await asyncio.sleep(0.05)
            placements.append(tuple(sorted(system.hosts_of(node))))

        for src, dest in followup_ops(transfers):
            await do_lookup(src, dest)

        for conn in conns.values():
            await conn.close()
        await wire.close()
    return lookups, placements


# ----------------------------------------------------------------------
# conformance
# ----------------------------------------------------------------------

def test_sim_and_live_traces_agree():
    sim_lookups, sim_placements = sim_trace()
    live_lookups, live_placements = asyncio.run(_live_trace())

    assert len(sim_lookups) == len(live_lookups)
    for i, (s, l) in enumerate(zip(sim_lookups, live_lookups)):
        assert s == l, (
            f"op {i}: sim (dest, hops, map, ver) = {s} but live = {l}"
        )
    assert sim_placements == live_placements


def test_sim_trace_is_self_consistent():
    # the conformance anchor must itself be reproducible
    assert sim_trace() == sim_trace()


# ----------------------------------------------------------------------
# client robustness: stalled peers
# ----------------------------------------------------------------------

async def _start_scripted_peer(path, script):
    """A fake peer listener whose i-th request is answered by
    ``script[i](msg)`` (None = stall: never answer)."""
    seen = []

    async def handle(reader, writer):
        frames = FrameReader()
        while True:
            data = await reader.read(65536)
            if not data:
                return
            for payload in frames.feed(data):
                msg = decode_message(payload)
                i = len(seen)
                seen.append(msg)
                fn = script[min(i, len(script) - 1)]
                reply = fn(msg)
                if reply is not None:
                    writer.write(encode_frame(reply))

    server = await asyncio.start_unix_server(handle, path=path)
    return server, seen


def _scripted_lookup(script, timeout, retries):
    async def go():
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "peer.sock")
            server, seen = await _start_scripted_peer(path, script)
            conn = HomeConnection(asyncio.get_running_loop(), ("uds", path))
            await conn.connect()
            reply = await conn.lookup(42, timeout, retries)
            await conn.close()
            server.close()
            await server.wait_closed()
            return reply, seen, conn

    return asyncio.run(go())


def test_lookup_times_out_against_stalled_peer():
    stall = lambda msg: None  # noqa: E731
    reply, seen, conn = _scripted_lookup([stall], timeout=0.05, retries=2)
    assert reply is None
    assert len(seen) == 3  # initial attempt + 2 reissues
    assert conn.n_timeouts == 3 and conn.n_sent == 3
    # each reissue is a fresh correlation id: stale replies can't match
    assert len({m.cqid for m in seen}) == 3


def test_retry_masks_a_stalled_first_attempt():
    stall = lambda msg: None  # noqa: E731
    ok = lambda msg: ClientLookupReply(  # noqa: E731
        msg.cqid, msg.node, True, servers=[1], hops=2
    )
    reply, seen, conn = _scripted_lookup([stall, ok], timeout=0.1, retries=1)
    assert reply is not None and reply.ok
    assert reply.hops == 2 and reply.servers == [1]
    assert len(seen) == 2
    assert conn.n_timeouts == 1 and conn.n_replies == 1


def test_deadline_failure_consumes_an_attempt():
    failed = lambda msg: ClientLookupReply(msg.cqid, msg.node, False)  # noqa: E731
    ok = lambda msg: ClientLookupReply(  # noqa: E731
        msg.cqid, msg.node, True, servers=[0]
    )
    reply, seen, conn = _scripted_lookup([failed, ok], timeout=1.0, retries=1)
    assert reply is not None and reply.ok
    assert len(seen) == 2  # the ok=False reply triggered one reissue
    assert conn.n_timeouts == 0 and conn.n_replies == 2
