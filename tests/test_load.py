"""Unit tests for the busy-window load metric (paper section 3.1)."""

import pytest

from repro.core.load import BusyWindowLoadMeter


class TestBusyAccounting:
    def test_idle_window_zero(self):
        m = BusyWindowLoadMeter(window=1.0)
        assert m.roll(1.0) == 0.0

    def test_fully_busy_window(self):
        m = BusyWindowLoadMeter(window=1.0)
        m.service_started(0.0)
        m.service_finished(1.0)
        assert m.roll(1.0) == pytest.approx(1.0)

    def test_half_busy(self):
        m = BusyWindowLoadMeter(window=1.0)
        m.service_started(0.0)
        m.service_finished(0.5)
        assert m.roll(1.0) == pytest.approx(0.5)

    def test_service_split_across_boundary(self):
        m = BusyWindowLoadMeter(window=1.0)
        m.service_started(0.5)
        assert m.roll(1.0) == pytest.approx(0.5)
        m.service_finished(1.5)
        assert m.roll(2.0) == pytest.approx(0.5)

    def test_double_start_rejected(self):
        m = BusyWindowLoadMeter()
        m.service_started(0.0)
        with pytest.raises(RuntimeError):
            m.service_started(0.1)

    def test_finish_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            BusyWindowLoadMeter().service_finished(1.0)

    def test_busy_flag(self):
        m = BusyWindowLoadMeter()
        assert not m.busy
        m.service_started(0.0)
        assert m.busy


class TestLoadReading:
    def test_normalized_range(self):
        m = BusyWindowLoadMeter(window=1.0)
        m.service_started(0.0)
        m.service_finished(1.0)
        m.roll(1.0)
        assert 0.0 <= m.load() <= 1.0

    def test_partial_window_sees_spike(self):
        """A server saturated mid-window reads high load before roll."""
        m = BusyWindowLoadMeter(window=1.0)
        m.roll(1.0)  # last window idle
        m.service_started(1.0)
        assert m.load(now=1.9) > 0.8

    def test_partial_window_weighting(self):
        """Early in a window the previous measurement dominates."""
        m = BusyWindowLoadMeter(window=1.0)
        m.service_started(0.0)
        m.service_finished(1.0)
        m.roll(1.0)  # measured 1.0
        assert m.load(now=1.05) > 0.9  # idle sliver barely dents it

    def test_measured_is_last_window(self):
        m = BusyWindowLoadMeter(window=1.0)
        m.service_started(0.0)
        m.service_finished(0.25)
        m.roll(1.0)
        assert m.measured() == pytest.approx(0.25)


class TestLinearComparability:
    def test_ratio_semantics(self):
        """Paper requirement 1: l1/l2 means server 1 has that multiple
        of server 2's load."""
        m1 = BusyWindowLoadMeter(window=1.0)
        m2 = BusyWindowLoadMeter(window=1.0)
        m1.service_started(0.0)
        m1.service_finished(0.8)
        m2.service_started(0.0)
        m2.service_finished(0.2)
        l1, l2 = m1.roll(1.0), m2.roll(1.0)
        assert l1 / l2 == pytest.approx(4.0)


class TestHysteresis:
    def test_adjustment_applied(self):
        m = BusyWindowLoadMeter(window=1.0)
        m.service_started(0.0)
        m.service_finished(1.0)
        m.roll(1.0)
        m.apply_adjustment(-0.4)
        assert m.load() == pytest.approx(0.6)

    def test_adjustment_decays(self):
        m = BusyWindowLoadMeter(window=1.0, adjust_decay=0.5)
        m.apply_adjustment(0.8)
        m.roll(1.0)
        m.roll(2.0)
        assert m.load() == pytest.approx(0.2)

    def test_adjustment_clamped(self):
        m = BusyWindowLoadMeter(window=1.0)
        m.apply_adjustment(5.0)
        assert m.load() == 1.0
        m.apply_adjustment(-50.0)
        assert m.load() == 0.0

    def test_prevents_thrash(self):
        """After booking the transfer, the source immediately reads a
        lower load even though measurements have not caught up --
        exactly the anti-thrashing hysteresis of creation step 4."""
        m = BusyWindowLoadMeter(window=1.0)
        m.service_started(0.0)
        m.service_finished(1.0)
        m.roll(1.0)  # measured fully loaded
        ls, lt = 1.0, 0.2
        m.apply_adjustment(-(ls - lt) / 2)
        assert m.load() == pytest.approx(0.6)


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            BusyWindowLoadMeter(window=0.0)

    def test_bad_decay(self):
        with pytest.raises(ValueError):
            BusyWindowLoadMeter(adjust_decay=2.0)
