"""Unit tests for node mapping management (paper section 3.7)."""

import random

import pytest

from repro.core.maps import NodeMap, merge_maps, select_host


class TestMergeMaps:
    def test_bounded_by_rmap(self):
        rng = random.Random(0)
        out = merge_maps([1, 2, 3], [4, 5, 6], rmap=4, rng=rng)
        assert len(out) == 4
        assert len(set(out)) == 4

    def test_advertised_always_kept(self):
        rng = random.Random(0)
        for _ in range(20):
            out = merge_maps([1, 2, 3, 4], [5, 6, 7, 8], rmap=3, rng=rng,
                             advertised=(9,))
            assert out[0] == 9

    def test_advertised_capped_at_rmap(self):
        rng = random.Random(0)
        out = merge_maps([], [], rmap=2, rng=rng, advertised=(1, 2, 3))
        assert out == [1, 2]

    def test_union_when_room(self):
        rng = random.Random(0)
        out = merge_maps([1], [2], rmap=4, rng=rng)
        assert set(out) == {1, 2}

    def test_dedupes(self):
        rng = random.Random(0)
        out = merge_maps([1, 2], [2, 1], rmap=4, rng=rng)
        assert sorted(out) == [1, 2]

    def test_random_fill_varies(self):
        """Two merges of the same maps may differ -- the paper merges
        twice (kept vs propagated) to diversify map configurations."""
        rng = random.Random(1)
        pool_a = list(range(10))
        results = {tuple(sorted(merge_maps(pool_a, [], 3, rng)))
                   for _ in range(30)}
        assert len(results) > 1

    def test_rejects_bad_rmap(self):
        with pytest.raises(ValueError):
            merge_maps([], [], rmap=0, rng=random.Random(0))


class TestSelectHost:
    def test_none_on_empty(self):
        assert select_host([], random.Random(0)) is None

    def test_excludes_self(self):
        assert select_host([7], random.Random(0), exclude=7) is None
        assert select_host([7, 8], random.Random(0), exclude=7) == 8

    def test_uniform_choice(self):
        rng = random.Random(0)
        seen = {select_host([1, 2, 3], rng) for _ in range(100)}
        assert seen == {1, 2, 3}


class TestNodeMap:
    def test_add_respects_bound(self):
        m = NodeMap(node=1, rmap=2)
        assert m.add(10)
        assert m.add(11)
        assert not m.add(12)
        assert len(m) == 2

    def test_add_dedupes(self):
        m = NodeMap(node=1, rmap=4)
        assert m.add(10)
        assert not m.add(10)

    def test_add_preferred_evicts_when_full(self):
        m = NodeMap(node=1, rmap=2, servers=[10, 11])
        m.add_preferred(12, random.Random(0))
        assert 12 in m
        assert len(m) == 2

    def test_discard(self):
        m = NodeMap(node=1, rmap=4, servers=[10])
        assert m.discard(10)
        assert not m.discard(10)

    def test_merge(self):
        m = NodeMap(node=1, rmap=3, servers=[1, 2])
        m.merge([3, 4], random.Random(0), advertised=(9,))
        assert m.servers[0] == 9
        assert len(m) == 3

    def test_filter_prunes(self):
        """Digest-based pruning: entries failing the digest test go."""
        m = NodeMap(node=1, rmap=4, servers=[1, 2, 3])
        dropped = m.filter(lambda s: s != 2)
        assert dropped == 1
        assert sorted(m.servers) == [1, 3]

    def test_select(self):
        m = NodeMap(node=1, rmap=4, servers=[5])
        assert m.select(random.Random(0)) == 5
        assert m.select(random.Random(0), exclude=5) is None

    def test_rejects_bad_rmap(self):
        with pytest.raises(ValueError):
            NodeMap(node=1, rmap=0)
