"""Tests for ownership transfer and membership changes."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.cluster.membership import (
    add_server,
    retire_server,
    transfer_ownership,
)
from repro.namespace.generators import balanced_tree
from repro.server.state import audit_peer
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import unif_stream


def make(n_servers=8, levels=6, **over):
    ns = balanced_tree(levels=levels)
    defaults = dict(n_servers=n_servers, seed=12, digest_probe_limit=1)
    defaults.update(over)
    return ns, build_system(ns, SystemConfig.replicated(**defaults))


class TestTransferOwnership:
    def test_basic_move(self):
        ns, system = make()
        node = next(iter(system.peers[0].owned))
        transfer_ownership(system, node, 1)
        assert node not in system.peers[0].owned
        assert node in system.peers[1].owned
        assert system.owner[node] == 1

    def test_data_and_meta_move(self):
        ns, system = make()
        node = next(iter(system.peers[0].owned))
        src = system.peers[0]
        src.metadata.set_data(node, b"payload")
        src.bump_meta(node)
        transfer_ownership(system, node, 1)
        dst = system.peers[1]
        assert dst.metadata.get_data(node) == b"payload"
        assert dst.metadata.meta(node).version == 1
        assert src.metadata.get_data(node) is None

    def test_new_owner_has_context(self):
        ns, system = make()
        node = next(iter(system.peers[0].owned))
        transfer_ownership(system, node, 1)
        for nbr in ns.neighbors(node):
            assert nbr in system.peers[1].maps

    def test_old_owner_digest_updated(self):
        ns, system = make()
        node = next(iter(system.peers[0].owned))
        transfer_ownership(system, node, 1)
        assert node not in system.peers[0].digest
        assert node in system.peers[1].digest

    def test_rejects_self_transfer(self):
        ns, system = make()
        node = next(iter(system.peers[0].owned))
        with pytest.raises(ValueError):
            transfer_ownership(system, node, 0)

    def test_rejects_bad_server(self):
        ns, system = make()
        with pytest.raises(ValueError):
            transfer_ownership(system, 0, 99)

    def test_replica_holder_promotes_to_owner(self):
        ns, system = make()
        node = next(iter(system.peers[0].owned))
        src, dst = system.peers[0], system.peers[1]
        dst.install_replica(src.build_replica_payload(node), 0.0)
        transfer_ownership(system, node, 1)
        assert node in dst.owned
        assert node not in dst.replicas

    def test_stale_routing_recovers_after_transfer(self):
        """Queries routed with stale maps take a stale hop at the old
        owner and still resolve (section 2.3's tolerance claim)."""
        ns, system = make()
        node = next(iter(system.peers[2].owned))
        transfer_ownership(system, node, 3)
        # server 0 still believes the old mapping (wired at build time
        # only if node neighbors one of its owned nodes; force it)
        system.peers[0].cache.put(node, [2])
        system.inject(0, node)
        system.engine.run(until=10.0)
        assert system.stats.n_completed == 1

    def test_audit_passes_after_transfer(self):
        ns, system = make()
        node = next(iter(system.peers[0].owned))
        transfer_ownership(system, node, 1)
        audit_peer(system.peers[0])
        audit_peer(system.peers[1])

    def test_every_node_still_owned_once(self):
        ns, system = make()
        node = next(iter(system.peers[0].owned))
        transfer_ownership(system, node, 1)
        owned = sorted(v for p in system.peers for v in p.owned)
        assert owned == list(range(len(ns)))


class TestRetireServer:
    def test_retirement_moves_everything(self):
        ns, system = make()
        moved = retire_server(system, 0)
        assert len(system.peers[0].owned) == 0
        assert len(system.peers[0].replicas) == 0
        for node, heir in moved.items():
            assert node in system.peers[heir].owned

    def test_round_robin_heirs(self):
        ns, system = make()
        moved = retire_server(system, 0, heirs=[1, 2])
        assert set(moved.values()) <= {1, 2}

    def test_no_heirs_rejected(self):
        ns, system = make()
        with pytest.raises(ValueError):
            retire_server(system, 0, heirs=[0])

    def test_system_routes_after_retirement(self):
        ns, system = make()
        retire_server(system, 0)
        drv = WorkloadDriver(system, unif_stream(150.0, 5.0, seed=3))
        drv.run()
        assert system.stats.completion_fraction > 0.9


class TestAddServer:
    def test_join_takes_nodes(self):
        ns, system = make()
        victim_nodes = sorted(system.peers[0].owned)[:3]
        sid = add_server(system, victim_nodes)
        assert sid == 8
        assert sorted(system.peers[sid].owned) == victim_nodes
        for v in victim_nodes:
            assert system.owner[v] == sid

    def test_joiner_participates_in_routing(self):
        ns, system = make()
        victim_nodes = sorted(system.peers[0].owned)[:2]
        sid = add_server(system, victim_nodes)
        system.inject(1, victim_nodes[0])
        system.engine.run(until=10.0)
        assert system.stats.n_completed == 1

    def test_joiner_digest_cross_evaluable(self):
        ns, system = make()
        sid = add_server(system, sorted(system.peers[0].owned)[:1])
        joiner = system.peers[sid]
        node = next(iter(joiner.owned))
        snap = joiner.digest.snapshot()
        # an old peer can evaluate the joiner's snapshot
        assert system.peers[1].digest.test_snapshot(snap, node)

    def test_workload_spans_new_server(self):
        ns, system = make()
        sid = add_server(system, sorted(system.peers[0].owned)[:2])
        drv = WorkloadDriver(system, unif_stream(150.0, 5.0, seed=4))
        drv.run()
        assert system.stats.completion_fraction > 0.9
        assert system.peers[sid].n_processed >= 0
