"""Unit tests for the deep-sizeof accounting helper."""

import sys
from array import array

from repro.namespace.generators import balanced_tree
from repro.sim.memsize import deep_sizeof, fmt_bytes, report, rss_bytes


class TestDeepSizeof:
    def test_counts_container_contents(self):
        assert deep_sizeof([10**9, 2 * 10**9]) > deep_sizeof([])

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof(shared)

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_sizeof(a) >= sys.getsizeof(a)

    def test_array_is_flat(self):
        """An int arena costs ~4 bytes/element; a list of the same ints
        costs several times more (the point of the arena refactor)."""
        arr = array("i", range(10000))
        boxed = list(range(10000))
        assert deep_sizeof(arr) < deep_sizeof(boxed) / 3

    def test_slots_instances(self):
        class Slotted:
            __slots__ = ("x", "y")

            def __init__(self):
                self.x = list(range(100))
                self.y = "payload" * 50

        s = Slotted()
        assert deep_sizeof(s) > deep_sizeof(s.x) + deep_sizeof(s.y) - 1

    def test_dict_keys_and_values(self):
        d = {"k" * 100: list(range(100))}
        assert deep_sizeof(d) > deep_sizeof("k" * 100) + deep_sizeof(
            list(range(100))
        )

    def test_skips_code_objects(self):
        assert deep_sizeof(deep_sizeof) == 0
        assert deep_sizeof(sys) == 0

    def test_namespace_smaller_than_boxed_equivalent(self):
        ns = balanced_tree(levels=10)
        boxed_anc = [tuple(ns.anc[v]) for v in range(len(ns))]
        assert deep_sizeof(ns) < deep_sizeof(boxed_anc)

    def test_shared_seen_set(self):
        shared = list(range(500))
        sizes = report({"first": [shared], "second": [shared]})
        assert sizes["first"] > sizes["second"]


class TestRss:
    def test_rss_positive_on_linux(self):
        rss = rss_bytes()
        assert rss == 0 or rss > 1024 * 1024  # zero only when unsupported


class TestFmtBytes:
    def test_units(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(1536) == "1.5 KiB"
        assert fmt_bytes(3 * 1024**2) == "3.0 MiB"
        assert fmt_bytes(2 * 1024**3) == "2.0 GiB"
