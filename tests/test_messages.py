"""Direct tests for message types and their piggyback contracts."""

import pytest

from repro.net.message import (
    Advertisement,
    DataReply,
    DataRequest,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ReplicaPayload,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
)


class TestQueryMessage:
    def test_initial_state(self):
        m = QueryMessage(qid=1, dest=5, origin=3, created_at=2.5)
        assert m.hops == 0
        assert m.sender == 3
        assert m.via == -1
        assert m.dest_map == []
        assert m.path == []
        assert m.adverts == []
        assert m.stale_hops == 0

    def test_slots_reject_unknown_attributes(self):
        m = QueryMessage(1, 5, 3, 0.0)
        with pytest.raises(AttributeError):
            m.bogus = 1

    def test_repr(self):
        m = QueryMessage(1, 5, 3, 0.0)
        assert "qid=1" in repr(m)


class TestResponseMessage:
    def test_copies_query_fields(self):
        q = QueryMessage(9, 5, 3, 1.0)
        q.hops = 4
        q.stale_hops = 1
        q.path = [(2, 7)]
        r = ResponseMessage(q, resolver=6, dest_map=[6, 8], meta_version=2)
        assert (r.qid, r.dest, r.origin) == (9, 5, 3)
        assert r.created_at == 1.0
        assert r.hops == 4
        assert r.stale_hops == 1
        assert r.path == [(2, 7)]
        assert r.resolver == 6
        assert r.meta_version == 2


class TestControlMessages:
    def test_probe_fields(self):
        p = ProbeMessage(session=1, src=2, src_load=0.9)
        assert (p.session, p.src, p.src_load) == (1, 2, 0.9)

    def test_probe_reply_fields(self):
        r = ProbeReplyMessage(session=1, src=4, load=0.1, willing=True)
        assert r.willing

    def test_transfer_carries_delta(self):
        payload = ReplicaPayload(7, 0, [1], {2: [3]})
        t = TransferMessage(1, 2, [payload], load_delta=0.35)
        assert t.load_delta == 0.35
        assert t.payloads[0].node == 7

    def test_ack_lists_installed(self):
        a = TransferAckMessage(1, 4, [7, 9])
        assert a.installed == [7, 9]


class TestReplicaPayload:
    def test_context_is_per_neighbor(self):
        p = ReplicaPayload(7, 3, [1, 2], {8: [1], 9: [2]}, meta=None)
        assert p.meta_version == 3
        assert set(p.context) == {8, 9}
        assert p.meta is None


class TestDataMessages:
    def test_request_defaults(self):
        r = DataRequest(rid=1, node=7, origin=0)
        assert not r.want_meta

    def test_reply_outcomes_exclusive_by_convention(self):
        r = DataReply(rid=1, node=7, responder=3)
        assert r.data is None and r.meta is None
        assert r.redirect_map == []
        r.redirect_map = [4, 5]
        assert r.redirect_map == [4, 5]


class TestAdvertisement:
    def test_fields_and_repr(self):
        a = Advertisement(node=7, server=3)
        assert "node=7" in repr(a)
