"""Unit tests for hierarchical name handling."""

import pytest

from repro.namespace.name import (
    ROOT_NAME,
    InvalidNameError,
    ancestors_of_name,
    basename,
    is_prefix,
    join,
    parent_name,
    split,
    validate_name,
)


class TestValidate:
    def test_root_is_valid(self):
        assert validate_name("/") == "/"

    def test_simple_name(self):
        assert validate_name("/a/b/c") == "/a/b/c"

    def test_rejects_relative(self):
        with pytest.raises(InvalidNameError):
            validate_name("a/b")

    def test_rejects_empty(self):
        with pytest.raises(InvalidNameError):
            validate_name("")

    def test_rejects_trailing_slash(self):
        with pytest.raises(InvalidNameError):
            validate_name("/a/b/")

    def test_rejects_empty_component(self):
        with pytest.raises(InvalidNameError):
            validate_name("/a//b")

    def test_rejects_dot_components(self):
        with pytest.raises(InvalidNameError):
            validate_name("/a/./b")
        with pytest.raises(InvalidNameError):
            validate_name("/a/../b")


class TestSplitJoin:
    def test_split_root(self):
        assert split("/") == ()

    def test_split_components(self):
        assert split("/university/public") == ("university", "public")

    def test_join_empty_is_root(self):
        assert join() == ROOT_NAME

    def test_join_roundtrip(self):
        name = "/university/public/people"
        assert join(*split(name)) == name


class TestParentBasename:
    def test_parent_of_root(self):
        assert parent_name("/") == "/"

    def test_parent_of_top_level(self):
        assert parent_name("/a") == "/"

    def test_parent_of_nested(self):
        assert parent_name("/a/b/c") == "/a/b"

    def test_basename_of_root(self):
        assert basename("/") == ""

    def test_basename_nested(self):
        assert basename("/a/b/c") == "c"


class TestAncestors:
    def test_root_ancestors(self):
        assert ancestors_of_name("/") == ["/"]

    def test_nested_ancestors(self):
        assert ancestors_of_name("/a/b/c") == ["/", "/a", "/a/b", "/a/b/c"]

    def test_prefix_extraction_matches_paper_example(self):
        # Fig 2: hosted node names produce all ancestor prefixes
        name = "/university/public/people/faculty"
        anc = ancestors_of_name(name)
        assert "/university/public" in anc
        assert "/university" in anc
        assert anc[0] == "/"
        assert anc[-1] == name


class TestIsPrefix:
    def test_root_prefixes_everything(self):
        assert is_prefix("/", "/a/b")

    def test_self_prefix(self):
        assert is_prefix("/a/b", "/a/b")

    def test_proper_prefix(self):
        assert is_prefix("/a", "/a/b")

    def test_component_boundary(self):
        # /ab is not an ancestor of /abc
        assert not is_prefix("/ab", "/abc")

    def test_non_prefix(self):
        assert not is_prefix("/a/b", "/a/c")
