"""Unit and property tests for the ancestor index.

The index must reproduce the linear-scan routing semantics *exactly*:
the winner is the first member in mirrored order at a strictly smaller
distance (``repro.core.routing.closest_hosted`` / ``scan_cache`` are
the reference implementations).  These tests pin the contract three
ways: direct unit tests, randomized cross-checks against an explicit
ordered-list scan, and end-of-workload equivalence on live peers.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.core.nsindex import NO_BOUND, AncestorIndex
from repro.core.routing import RouteAction, closest_hosted, decide, scan_cache
from repro.namespace.generators import balanced_tree, university_tree
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import cuzipf_stream


def ref_closest(ns, order, dest, best_d=NO_BOUND):
    """The scan the index must agree with: first member in ``order``
    at a strictly smaller distance."""
    best = -1
    for v in order:
        d = ns.distance(v, dest)
        if d < best_d:
            best, best_d = v, d
    return best, best_d


@pytest.fixture(scope="module")
def ns():
    return balanced_tree(levels=5)


class TestBasics:
    def test_empty(self, ns):
        idx = AncestorIndex(ns)
        assert len(idx) == 0
        assert 3 not in idx
        assert idx.closest(3) == (-1, NO_BOUND)

    def test_add_and_query(self, ns):
        idx = AncestorIndex(ns)
        idx.add(0)
        assert 0 in idx
        assert len(idx) == 1
        node, d = idx.closest(0)
        assert (node, d) == (0, 0)

    def test_duplicate_add_rejected(self, ns):
        idx = AncestorIndex(ns)
        idx.add(5)
        with pytest.raises(ValueError):
            idx.add(5)

    def test_remove_is_idempotent(self, ns):
        idx = AncestorIndex(ns)
        idx.add(5)
        idx.remove(5)
        assert 5 not in idx
        idx.remove(5)  # absent: no-op
        assert len(idx) == 0
        assert idx.closest(5) == (-1, NO_BOUND)

    def test_touch_absent_is_noop(self, ns):
        idx = AncestorIndex(ns)
        idx.touch(7)
        assert len(idx) == 0

    def test_seed_members_in_order(self, ns):
        idx = AncestorIndex(ns, [4, 2, 9])
        assert sorted(idx.nodes()) == [2, 4, 9]
        assert len(idx) == 3

    def test_clear_and_rebuild(self, ns):
        idx = AncestorIndex(ns, [1, 2, 3])
        idx.clear()
        assert len(idx) == 0
        idx.rebuild([7, 8])
        assert sorted(idx.nodes()) == [7, 8]

    def test_bound_prunes(self, ns):
        """A caller-supplied bound is a strict-improvement filter."""
        idx = AncestorIndex(ns)
        idx.add(0)  # the root: distance to any node == its depth
        dest = len(ns) - 1  # a leaf
        d = ns.depth[dest]
        assert idx.closest(dest, d + 1) == (0, d)
        assert idx.closest(dest, d) == (-1, d)  # not strictly closer


class TestOrderTieBreak:
    """Equal distance: the *earlier* member in mirrored order wins."""

    def sibling_pair(self, ns):
        """Two children of the root: equidistant from each other's
        subtrees' destinations when probed from outside."""
        kids = ns.children[0]
        assert len(kids) >= 2
        return kids[0], kids[1]

    def test_first_added_wins_tie(self, ns):
        a, b = self.sibling_pair(ns)
        idx = AncestorIndex(ns, [a, b])
        node, _ = idx.closest(0)
        assert node == a
        idx2 = AncestorIndex(ns, [b, a])
        node2, _ = idx2.closest(0)
        assert node2 == b

    def test_touch_moves_to_back(self, ns):
        a, b = self.sibling_pair(ns)
        idx = AncestorIndex(ns, [a, b])
        idx.touch(a)  # order is now [b, a]
        node, _ = idx.closest(0)
        assert node == b

    def test_touch_of_last_is_noop(self, ns):
        a, b = self.sibling_pair(ns)
        idx = AncestorIndex(ns, [a, b])
        idx.touch(b)  # already last: order unchanged
        node, _ = idx.closest(0)
        assert node == a

    def test_readd_after_remove_goes_to_back(self, ns):
        a, b = self.sibling_pair(ns)
        idx = AncestorIndex(ns, [a, b])
        idx.remove(a)
        idx.add(a)  # order is now [b, a]
        node, _ = idx.closest(0)
        assert node == b


class _OrderMirror:
    """An ordered list driven by the same op stream as the index."""

    def __init__(self):
        self.order = []

    def add(self, v):
        self.order.append(v)

    def touch(self, v):
        if v in self.order:
            self.order.remove(v)
            self.order.append(v)

    def remove(self, v):
        if v in self.order:
            self.order.remove(v)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["add", "touch", "remove"]),
                          st.integers(0, 62)),
                max_size=120),
       st.integers(0, 2**32 - 1))
def test_index_matches_reference_scan(ops, seed):
    """Randomized op sequences: every (dest, bound) query agrees with
    the explicit ordered-list scan."""
    ns = balanced_tree(levels=5)  # 63 nodes
    idx = AncestorIndex(ns)
    ref = _OrderMirror()
    for op, v in ops:
        if op == "add":
            if v in idx:
                idx.touch(v)
                ref.touch(v)
            else:
                idx.add(v)
                ref.add(v)
        elif op == "touch":
            idx.touch(v)
            ref.touch(v)
        else:
            idx.remove(v)
            ref.remove(v)
    assert sorted(idx.nodes()) == sorted(ref.order)
    rng = random.Random(seed)
    for _ in range(20):
        dest = rng.randrange(len(ns))
        bound = rng.choice([NO_BOUND, rng.randrange(1, 12)])
        assert idx.closest(dest, bound) == ref_closest(
            ns, ref.order, dest, bound)


class TestLiveEquivalence:
    """After a real workload, the store and cache indexes answer
    exactly what the reference scans answer, on every peer."""

    def test_index_vs_scan_after_workload(self):
        ns = balanced_tree(levels=6)
        cfg = SystemConfig.replicated(n_servers=4, seed=11, cache_slots=8)
        system = build_system(ns, cfg)
        spec = cuzipf_stream(rate=200.0, alpha=1.0, warmup=1.0,
                             phase=1.0, n_phases=2, seed=11)
        WorkloadDriver(system, spec).start()
        system.run_until(spec.duration + 1.0)
        rng = random.Random(3)
        dests = [rng.randrange(len(ns)) for _ in range(200)]
        for peer in system.peers:
            assert sorted(peer.store.index.nodes()) == sorted(
                peer.hosted_list)
            assert sorted(peer.cache.index.nodes()) == sorted(
                peer.cache.nodes())
            for dest in dests:
                if not peer.hosts(dest):
                    # decide() only consults the index for non-hosted
                    # dests; closest_hosted's d==1 early-break makes the
                    # two legitimately differ when dest itself is hosted
                    assert peer.store.index.closest(dest) == (
                        closest_hosted(peer, dest))
                for bound in (NO_BOUND, 1, 2, 4):
                    assert peer.cache.index.closest(dest, bound) == (
                        scan_cache(peer, dest, bound))


def uni_system(**cfg_over):
    ns = university_tree()
    defaults = dict(n_servers=len(ns), seed=1, bootstrap_known_peers=0,
                    digests_enabled=False)
    defaults.update(cfg_over)
    cfg = SystemConfig.replicated(**defaults)
    owner = list(range(len(ns)))
    return ns, build_system(ns, cfg, owner=owner)


class TestDecideGolden:
    """Tie-break precedence of decide(): struct vs cache vs LRU order."""

    def test_cache_needs_strict_improvement(self):
        """A cached node at the same distance as the structural
        candidate does NOT win: cache requires strictly closer."""
        ns, system = uni_system()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private")
        peer = system.peers[src]
        base = decide(peer, dst)
        assert base.source == "struct"
        # cache a node at exactly the structural candidate's distance
        same_d = ns.id_of("/university/public/people")
        assert ns.distance(same_d, dst) == base.distance
        peer.cache.put(same_d, [system.owner[same_d]])
        d = decide(peer, dst)
        assert (d.source, d.via) == ("struct", base.via)

    def test_cache_wins_when_strictly_closer(self):
        ns, system = uni_system()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private")
        peer = system.peers[src]
        closer = ns.id_of("/university")
        peer.cache.put(closer, [system.owner[closer]])
        d = decide(peer, dst)
        assert (d.source, d.via) == ("cache", closer)

    def test_lru_order_breaks_cache_ties(self):
        """Two equidistant cache entries: LRU iteration order decides,
        and a touch (cache hit) flips it."""
        ns, system = uni_system()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private/people/staff/Ann")
        peer = system.peers[src]
        a = ns.id_of("/university/private/people")
        b = ns.id_of("/university/private/people/staff/Mary")
        assert ns.distance(a, dst) == ns.distance(b, dst)
        peer.cache.put(a, [system.owner[a]])
        peer.cache.put(b, [system.owner[b]])
        assert decide(peer, dst).via == a  # a is earlier in LRU order
        peer.cache.get(a)  # LRU touch: order becomes [b, a]
        assert decide(peer, dst).via == b

    def test_dead_cache_entry_falls_back_to_struct(self):
        """A winning cache entry whose map dead-ends is dropped and the
        structural candidate is re-used."""
        ns, system = uni_system()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private")
        peer = system.peers[src]
        closer = ns.id_of("/university")
        peer.cache.put(closer, [peer.sid])  # only ourselves: dead
        d = decide(peer, dst)
        assert d.action is RouteAction.FORWARD
        assert d.source == "struct"
        assert closer not in list(peer.cache.nodes())  # entry dropped
