"""Tests for the multiprocess experiment fan-out."""

import os

import pytest

from repro.experiments.parallel import (
    ParallelTaskError,
    parallel_map,
    worker_count,
)


def square(x):
    return x * x


def boom(x):
    raise RuntimeError("task failure")


class TestWorkerCount:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count(10) == 0

    def test_env_zero_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert worker_count(10) == 0

    def test_env_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert worker_count(10) == 4

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert worker_count(1000) == (os.cpu_count() or 1)

    def test_capped_by_tasks(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "64")
        assert worker_count(3) == 3

    def test_one_worker_is_serial(self):
        assert worker_count(10, workers=1) == 0

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            worker_count(10)


class TestParallelMap:
    def test_serial_results_in_order(self):
        out = parallel_map(square, [dict(x=i) for i in range(6)], workers=0)
        assert out == [0, 1, 4, 9, 16, 25]

    def test_parallel_results_in_order(self):
        out = parallel_map(square, [dict(x=i) for i in range(6)], workers=2)
        assert out == [0, 1, 4, 9, 16, 25]

    def test_single_task_stays_serial(self):
        assert parallel_map(square, [dict(x=3)], workers=8) == [9]

    def test_empty(self):
        assert parallel_map(square, [], workers=4) == []

    def test_serial_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            parallel_map(boom, [dict(x=1), dict(x=2)], workers=0)

    def test_parallel_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            parallel_map(boom, [dict(x=1), dict(x=2)], workers=2)

    def test_serial_error_reports_task_context(self):
        with pytest.raises(ParallelTaskError) as exc_info:
            parallel_map(
                boom, [dict(x=1), dict(x="long-string-value" * 20)],
                workers=0,
            )
        msg = str(exc_info.value)
        assert "task 0/2" in msg
        assert "boom" in msg
        assert "RuntimeError: task failure" in msg
        assert "x=1" in msg
        assert exc_info.value.__cause__ is not None

    def test_parallel_error_reports_task_context(self):
        with pytest.raises(ParallelTaskError) as exc_info:
            parallel_map(boom, [dict(x=1), dict(x=2)], workers=2)
        assert "boom" in str(exc_info.value)
        assert "RuntimeError: task failure" in str(exc_info.value)

    def test_error_kwargs_are_truncated(self):
        with pytest.raises(ParallelTaskError) as exc_info:
            parallel_map(boom, [dict(x="v" * 500)], workers=0)
        assert "..." in str(exc_info.value)
        assert len(str(exc_info.value)) < 400

    def test_parallel_matches_serial_for_experiment_cell(self):
        """A real experiment cell produces identical results either way."""
        from repro.experiments.common import Scale
        from repro.experiments.fig5_ablation import fig5_cell

        micro = Scale(
            name="tiny", ns_levels=6, nc_nodes=300, n_servers=4,
            warmup=1.0, phase=1.0, n_phases=1, drain=1.0, cache_slots=6,
            digest_probe_limit=1,
        )
        kwargs = dict(scale=micro, preset="BCR", label="unifS", ns_kind="S",
                      alpha=0.0, utilization=0.3, seed=5)
        serial = parallel_map(fig5_cell, [kwargs, kwargs], workers=0)
        para = parallel_map(fig5_cell, [kwargs, kwargs], workers=2)
        assert serial == para
