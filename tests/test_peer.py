"""Unit tests for the server (peer) model: queueing, service, soft state."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree


def make(n_servers=4, levels=4, **over):
    ns = balanced_tree(levels=levels)
    defaults = dict(n_servers=n_servers, seed=3, bootstrap_known_peers=0)
    defaults.update(over)
    cfg = SystemConfig.replicated(**defaults)
    return ns, build_system(ns, cfg)


class TestQueueing:
    def test_first_message_starts_service(self):
        ns, system = make()
        p = system.peers[0]
        dest = next(iter(system.peers[1].owned))
        p.inject(dest, qid=1)
        assert p.in_service
        assert len(p.queue) == 0

    def test_excess_arrivals_dropped(self):
        ns, system = make(queue_size=2)
        p = system.peers[0]
        dest = next(iter(system.peers[1].owned))
        for i in range(5):
            p.inject(dest, qid=i)
        # 1 in service + 2 queued + 2 dropped
        assert len(p.queue) == 2
        assert p.n_queue_drops == 2
        assert system.stats.drop_reasons.get("queue") == 2

    def test_queue_drains_in_fifo_order(self):
        ns, system = make()
        p = system.peers[0]
        dest = next(iter(system.peers[1].owned))
        for i in range(3):
            p.inject(dest, qid=i)
        system.engine.run(until=5.0)
        assert not p.in_service
        assert len(p.queue) == 0
        assert p.n_processed == 3

    def test_busy_time_accumulates(self):
        ns, system = make()
        p = system.peers[0]
        dest = next(iter(system.peers[1].owned))
        p.inject(dest, qid=1)
        system.run_until(10.0)  # run_until drives window maintenance
        assert p.meter.n_windows > 0


class TestLocalResolution:
    def test_owned_destination_resolves_without_network(self):
        ns, system = make()
        p = system.peers[0]
        dest = next(iter(p.owned))
        sent_before = system.transport.n_sent
        p.inject(dest, qid=1)
        system.engine.run(until=2.0)
        assert system.stats.n_completed == 1
        assert system.stats.latency.max < 1.0
        assert system.transport.n_sent == sent_before  # zero network hops


class TestEndToEndQuery:
    def test_remote_lookup_completes(self):
        ns, system = make()
        src = system.peers[0]
        dest = next(iter(system.peers[2].owned))
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        assert system.stats.n_completed == 1
        assert system.stats.mean_hops >= 1

    def test_latency_includes_network_and_service(self):
        ns, system = make(net_delay=0.1, service_mean=0.001)
        src = system.peers[0]
        dest = next(iter(system.peers[2].owned))
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        # at least one forward + one response = 2 network legs
        assert system.stats.latency.mean >= 0.2

    def test_all_destinations_reachable(self):
        """Every node can be looked up from every server (cold state)."""
        ns, system = make(n_servers=4, levels=3)
        qid = 0
        for dest in range(len(ns)):
            for src in range(4):
                qid += 1
                system.peers[src].inject(dest, qid)
                system.engine.run(until=system.engine.now + 30.0)
        assert system.stats.n_completed == qid
        assert system.stats.n_dropped == 0


class TestSoftStateAbsorption:
    def test_sender_load_learned(self):
        ns, system = make()
        src = system.peers[0]
        dest = next(iter(system.peers[2].owned))
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        learned = [
            p for p in system.peers
            if any(s == 0 for s in p.known_loads)
        ]
        assert learned  # someone heard about server 0's load in-band

    def test_digest_snapshot_learned(self):
        ns, system = make()
        src = system.peers[0]
        dest = next(iter(system.peers[2].owned))
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        learned = [
            p for p in system.peers if p.sid != 0 and p.digest_dir.get(0)
        ]
        assert learned

    def test_response_caches_destination(self):
        ns, system = make()
        src = system.peers[0]
        dest = next(iter(system.peers[2].owned))
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        assert src.cache.peek(dest) is not None

    def test_no_caching_when_disabled(self):
        ns, system = make(caching_enabled=False)
        src = system.peers[0]
        dest = next(iter(system.peers[2].owned))
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        assert len(src.cache) == 0


class TestPathPropagation:
    def test_path_entries_cached_at_source(self):
        """Paper section 2.4: the entire path is cached at the source
        when the query completes -- near and far nodes both."""
        ns, system = make(n_servers=8, levels=6)
        src = system.peers[0]
        # pick a destination several hops away
        deep = [v for v in range(len(ns)) if ns.depth[v] == ns.max_depth
                and not src.hosts(v)]
        dest = deep[0]
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        assert system.stats.n_completed == 1
        assert len(src.cache) >= 1

    def test_endpoint_only_when_disabled(self):
        ns, system = make(n_servers=8, levels=6, path_propagation=False)
        src = system.peers[0]
        deep = [v for v in range(len(ns)) if ns.depth[v] == ns.max_depth
                and not src.hosts(v)]
        dest = deep[0]
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        # only the destination itself may be cached
        assert set(src.cache.nodes()) <= {dest}


class TestStaleHops:
    def test_stale_hop_counted_and_query_recovers(self):
        ns, system = make()
        src = system.peers[0]
        dest = next(iter(system.peers[2].owned))
        # poison the source cache: server 1 claims to host dest but won't
        src.cache.put(dest, [1])
        src.inject(dest, qid=1)
        system.engine.run(until=10.0)
        assert system.stats.n_stale_hops >= 1
        assert system.stats.n_completed == 1  # recovered via server 1's state


class TestMetaVersioning:
    def test_owner_bumps_meta(self):
        ns, system = make()
        p = system.peers[0]
        node = next(iter(p.owned))
        assert p.bump_meta(node) == 1
        assert p.bump_meta(node) == 2

    def test_non_owner_cannot_bump(self):
        ns, system = make()
        p = system.peers[0]
        node = next(iter(system.peers[1].owned))
        with pytest.raises(KeyError):
            p.bump_meta(node)

    def test_replica_carries_meta_version(self):
        ns, system = make()
        src, dst = system.peers[0], system.peers[1]
        node = next(iter(src.owned))
        src.bump_meta(node)
        src.bump_meta(node)
        dst.install_replica(src.build_replica_payload(node), 0.0)
        assert dst.replicas[node].meta_version == 2
