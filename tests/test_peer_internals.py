"""Deeper unit tests of peer internals: pins, maps, adverts, digests."""

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.server.peer import AdvertMessage


def make(n_servers=6, levels=5, **over):
    ns = balanced_tree(levels=levels)
    defaults = dict(n_servers=n_servers, seed=21, bootstrap_known_peers=0)
    defaults.update(over)
    return ns, build_system(ns, SystemConfig.replicated(**defaults))


class TestPinning:
    def test_pin_refcounts(self):
        ns, system = make()
        p = system.peers[0]
        free = next(v for v in range(len(ns)) if v not in p.pin_refs
                    and not p.hosts(v))
        p.pin(free, [1])
        p.pin(free, [2])
        assert p.pin_refs[free] == 2
        p.unpin(free)
        assert free in p.maps
        p.unpin(free)
        assert free not in p.maps

    def test_unpin_demotes_to_cache(self):
        ns, system = make()
        p = system.peers[0]
        free = next(v for v in range(len(ns)) if v not in p.pin_refs
                    and not p.hosts(v))
        p.pin(free, [3])
        p.unpin(free)
        assert list(p.cache.peek(free)) == [3]

    def test_unpin_no_cache_when_disabled(self):
        ns, system = make(caching_enabled=False)
        p = system.peers[0]
        free = next(v for v in range(len(ns)) if v not in p.pin_refs
                    and not p.hosts(v))
        p.pin(free, [3])
        p.unpin(free)
        assert len(p.cache) == 0

    def test_pin_respects_rmap(self):
        ns, system = make(rmap=2)
        p = system.peers[0]
        free = next(v for v in range(len(ns)) if v not in p.pin_refs
                    and not p.hosts(v))
        p.pin(free, [1, 2, 3, 4])
        assert len(p.maps[free]) == 2


class TestMergeMapFiltering:
    def test_digest_filtering_drops_refuted_entries(self):
        """Map filtering (section 3.6.2): entries whose known digest
        denies the node are pruned during merges."""
        ns, system = make()
        p = system.peers[0]
        other = system.peers[1]
        node = next(iter(p.owned))
        # p learns other's digest; other's digest does NOT contain node
        p.digest_dir.observe(other.sid, other.digest.snapshot())
        p.merge_map(node, [other.sid])
        assert other.sid not in p.maps[node]

    def test_unknown_digest_entries_kept(self):
        ns, system = make()
        p = system.peers[0]
        node = next(iter(p.owned))
        p.merge_map(node, [4])  # no digest known for server 4
        assert 4 in p.maps[node]

    def test_positive_digest_entries_kept(self):
        ns, system = make()
        p, other = system.peers[0], system.peers[1]
        node = next(iter(p.owned))
        other.digest.add(node)  # other now claims to host it
        p.digest_dir.observe(other.sid, other.digest.snapshot())
        p.merge_map(node, [other.sid])
        assert other.sid in p.maps[node]

    def test_oracle_mode_uses_ground_truth(self):
        ns, system = make(oracle_maps=True)
        p, other = system.peers[0], system.peers[1]
        node = next(iter(p.owned))
        p.merge_map(node, [other.sid])  # other truly does not host it
        assert other.sid not in p.maps[node]

    def test_merge_into_cache_entry(self):
        ns, system = make()
        p = system.peers[0]
        free = next(v for v in range(len(ns)) if v not in p.pin_refs
                    and not p.hosts(v))
        p.cache.put(free, [2])
        p.merge_map(free, [3])
        assert set(p.cache.peek(free)) == {2, 3}

    def test_owner_never_filtered_out_of_own_map(self):
        ns, system = make()
        p = system.peers[0]
        node = next(iter(p.owned))
        for _ in range(10):
            p.merge_map(node, [1, 2, 3, 4, 5])
        assert p.sid in p.maps[node]


class TestAdvertAbsorption:
    def test_advert_prepends_to_map(self):
        ns, system = make()
        p = system.peers[0]
        node = next(iter(p.owned))
        p.deliver(AdvertMessage(node, [4]))
        assert p.maps[node][0] == 4

    def test_advert_bounded_by_rmap(self):
        ns, system = make(rmap=2)
        p = system.peers[0]
        node = next(iter(p.owned))
        for s in (2, 3, 4, 5):
            p.deliver(AdvertMessage(node, [s]))
        assert len(p.maps[node]) <= 3  # self + rmap-bounded entries

    def test_advert_never_evicts_self(self):
        ns, system = make(rmap=2)
        p = system.peers[0]
        node = next(iter(p.owned))
        for s in (2, 3, 4, 5, 6):
            p.deliver(AdvertMessage(node, [s]))
        assert p.sid in p.maps[node]

    def test_advert_to_cached_entry(self):
        ns, system = make()
        p = system.peers[0]
        free = next(v for v in range(len(ns)) if v not in p.pin_refs
                    and not p.hosts(v))
        p.cache.put(free, [1])
        p.deliver(AdvertMessage(free, [2]))
        assert 2 in p.cache.peek(free)

    def test_advert_for_unknown_node_ignored(self):
        ns, system = make()
        p = system.peers[0]
        free = next(v for v in range(len(ns)) if v not in p.pin_refs
                    and not p.hosts(v) and v not in p.cache)
        p.deliver(AdvertMessage(free, [2]))
        assert free not in p.maps
        assert free not in p.cache


class TestNoteReplicaCreated:
    def test_map_gets_target_first(self):
        ns, system = make()
        p = system.peers[0]
        node = next(iter(p.owned))
        p.note_replica_created(node, 3, 0.0)
        assert p.maps[node][0] == 3
        assert 3 in p.adverts_recent[node]

    def test_adverts_recent_bounded(self):
        ns, system = make(rmap=2)
        p = system.peers[0]
        node = next(iter(p.owned))
        for target in (1, 2, 3, 4):
            p.note_replica_created(node, target, 0.0)
        assert len(p.adverts_recent[node]) == 2
        assert list(p.adverts_recent[node]) == [4, 3]  # most recent first

    def test_duplicate_target_moves_to_front(self):
        ns, system = make()
        p = system.peers[0]
        node = next(iter(p.owned))
        p.note_replica_created(node, 1, 0.0)
        p.note_replica_created(node, 2, 0.0)
        p.note_replica_created(node, 1, 0.0)
        assert list(p.adverts_recent[node])[0] == 1

    def test_stats_recorded_per_level(self):
        ns, system = make()
        p = system.peers[0]
        node = next(iter(p.owned))
        p.note_replica_created(node, 3, 0.0)
        assert system.stats.level_replicas[ns.depth[node]] == 1


class TestQueueEdgeCases:
    def test_zero_queue_size_drops_all_waiting(self):
        ns, system = make(queue_size=0)
        p = system.peers[0]
        dest = next(iter(system.peers[1].owned))
        p.inject(dest, qid=1)  # starts service
        p.inject(dest, qid=2)  # queue full (size 0) -> dropped
        assert p.n_queue_drops == 1

    def test_ttl_drop(self):
        ns, system = make(max_hops=1)
        p = system.peers[0]
        # destination guaranteed several hops away
        deep = [v for v in range(len(ns))
                if ns.depth[v] == ns.max_depth and not p.hosts(v)]
        dest = next(d for d in deep
                    if not any(p.hosts(a) for a in ns.anc[d]))
        p.inject(dest, qid=1)
        system.engine.run(until=20.0)
        total = system.stats.n_completed + system.stats.n_dropped
        assert total == 1
        # with max_hops=1 distant lookups usually TTL out
        if system.stats.n_dropped:
            assert system.stats.drop_reasons.get("ttl", 0) >= 1


class TestDigestLifecycle:
    def test_install_adds_to_digest(self):
        ns, system = make()
        src, dst = system.peers[0], system.peers[1]
        node = next(iter(src.owned))
        dst.install_replica(src.build_replica_payload(node), 0.0)
        assert node in dst.digest

    def test_install_clears_stale_cache_entry(self):
        ns, system = make()
        src, dst = system.peers[0], system.peers[1]
        node = next(iter(src.owned))
        dst.cache.put(node, [src.sid])
        dst.install_replica(src.build_replica_payload(node), 0.0)
        assert node not in dst.cache

    def test_digest_version_monotone(self):
        ns, system = make()
        src, dst = system.peers[0], system.peers[1]
        node = next(iter(src.owned))
        v0 = dst.digest.version
        dst.install_replica(src.build_replica_payload(node), 0.0)
        v1 = dst.digest.version
        dst.evict_replica(node, 1.0)
        v2 = dst.digest.version
        assert v0 < v1 < v2


class TestUnpinHostedRegression:
    def test_unpin_never_strips_hosted_map(self):
        """Regression (found by hypothesis): evicting a replica whose
        namespace neighbor is an *owned* node must not remove the owned
        node's map when its pin count reaches zero."""
        ns, system = make(n_servers=4, levels=4)
        p, other = system.peers[0], system.peers[1]
        # find a replica candidate adjacent to one of p's owned nodes
        owned = next(iter(p.owned))
        nbr = next(n for n in ns.neighbors(owned) if not p.hosts(n))
        src = system.peers[system.owner[nbr]]
        p.install_replica(src.build_replica_payload(nbr), 0.0)
        assert owned in p.maps
        p.evict_replica(nbr, 1.0)
        assert owned in p.maps          # the owned node keeps its map
        assert p.sid in p.maps[owned]
        from repro.server.state import audit_peer
        audit_peer(p)
