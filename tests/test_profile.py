"""Unit tests for the event-loop profiling layer and the bench gate."""

import json

import pytest

from repro.sim import profile
from repro.sim.engine import Engine, SimError
from repro.sim.profile import ProfiledEngine


class _Handler:
    def __init__(self, log):
        self.log = log

    def hit(self, tag):
        self.log.append(tag)


class TestProfiledEngine:
    def test_same_semantics_as_plain_engine(self):
        """A fixed schedule runs identically under both engines."""
        def drive(eng):
            order = []
            h = eng.schedule(1.0, order.append, "cancelled", handle=True)
            h.cancel()
            for tag in "ab":
                eng.schedule(2.0, order.append, tag)
            eng.schedule(0.5, order.append, "first")
            eng.run(until=1.5)
            clock_mid = eng.now
            eng.run(max_events=1)
            eng.run()
            return order, clock_mid, eng.now, eng.n_dispatched

        assert drive(Engine()) == drive(ProfiledEngine())

    def test_not_reentrant(self):
        eng = ProfiledEngine()
        eng.schedule(1.0, eng.run)
        with pytest.raises(SimError):
            eng.run()

    def test_collects_per_handler_counts_and_time(self):
        eng = ProfiledEngine()
        log = []
        handler = _Handler(log)
        for i in range(3):
            eng.schedule(float(i), handler.hit, i)
        eng.schedule(5.0, log.append, "lambda-free")
        eng.run()
        key = _Handler.hit.__qualname__
        assert key in eng.profile
        count, seconds = eng.profile[key]
        assert count == 3
        assert seconds >= 0.0
        assert eng.wall_time > 0.0
        assert eng.n_dispatched == 4

    def test_cancelled_events_not_attributed(self):
        eng = ProfiledEngine()
        log = []
        handler = _Handler(log)
        eng.schedule(1.0, handler.hit, "x", handle=True).cancel()
        eng.run()
        assert _Handler.hit.__qualname__ not in eng.profile


class TestSwitch:
    def test_make_engine_respects_switch(self):
        profile.reset()
        assert type(profile.make_engine()) is Engine
        profile.enable()
        try:
            eng = profile.make_engine()
            assert isinstance(eng, ProfiledEngine)
            assert eng in profile.engines()
        finally:
            profile.disable()
            profile.reset()
        assert type(profile.make_engine()) is Engine
        assert profile.engines() == []

    def test_build_system_picks_up_profiling(self):
        from repro.cluster.builder import build_system
        from repro.cluster.config import SystemConfig
        from repro.namespace.generators import balanced_tree

        ns = balanced_tree(levels=4)
        cfg = SystemConfig.replicated(n_servers=2, seed=1)
        profile.enable()
        profile.reset()
        try:
            system = build_system(ns, cfg)
            assert isinstance(system.engine, ProfiledEngine)
        finally:
            profile.disable()
            profile.reset()


class TestReport:
    def test_aggregate_and_render(self):
        e1, e2 = ProfiledEngine(), ProfiledEngine()
        log = []
        handler = _Handler(log)
        for eng in (e1, e2):
            for i in range(2):
                eng.schedule(float(i), handler.hit, i)
            eng.run()
        merged, n_events, wall = profile.aggregate([e1, e2])
        assert merged[_Handler.hit.__qualname__][0] == 4
        assert n_events == 4
        assert wall > 0.0
        report = profile.render_report([e1, e2])
        assert "_Handler.hit" in report
        assert "events/sec" in report
        assert "overhead" in report

    def test_render_report_empty(self):
        assert "0 events" in profile.render_report([])


class TestBenchGate:
    def _write_baseline(self, tmp_path, rate):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"after": {"transport_chain": {"events_per_sec": rate}}}))
        return str(path)

    def test_check_passes_within_tolerance(self, tmp_path):
        from repro.experiments.bench_micro import check_regression

        results = {"transport_chain": {"events_per_sec": 90.0}}
        baseline = self._write_baseline(tmp_path, 100.0)
        assert check_regression(results, baseline, tolerance=0.20) == []

    def test_check_fails_beyond_tolerance(self, tmp_path):
        from repro.experiments.bench_micro import check_regression

        results = {"transport_chain": {"events_per_sec": 70.0}}
        baseline = self._write_baseline(tmp_path, 100.0)
        failures = check_regression(results, baseline, tolerance=0.20)
        assert len(failures) == 1
        assert "transport_chain" in failures[0]

    def test_check_ignores_scenarios_missing_on_either_side(self, tmp_path):
        from repro.experiments.bench_micro import check_regression

        baseline = self._write_baseline(tmp_path, 100.0)
        assert check_regression({}, baseline, tolerance=0.20) == []
