"""Property-based tests (hypothesis) on core data structures and
protocol invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.maps import merge_maps
from repro.core.ranking import NodeRanking
from repro.filters.bloom import BloomFilter
from repro.namespace.generators import random_tree
from repro.namespace.name import ancestors_of_name, is_prefix, join, split
from repro.sim.rng import ZipfSampler
from repro.sim.stats import WindowAverager


# ---------------------------------------------------------------------------
# namespace distance is a metric; routing paths are geodesics
# ---------------------------------------------------------------------------

trees = st.integers(min_value=2, max_value=120).flatmap(
    lambda n: st.integers(min_value=0, max_value=2**31 - 1).map(
        lambda seed: random_tree(n, seed=seed)
    )
)


@given(trees, st.data())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_distance_is_a_metric(ns, data):
    n = len(ns)
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    c = data.draw(st.integers(0, n - 1))
    dab = ns.distance(a, b)
    assert dab >= 0
    assert (dab == 0) == (a == b)
    assert dab == ns.distance(b, a)  # symmetry
    assert dab <= ns.distance(a, c) + ns.distance(c, b)  # triangle


@given(trees, st.data())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_route_path_is_geodesic(ns, data):
    n = len(ns)
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    path = ns.route_path(a, b)
    assert path[0] == a and path[-1] == b
    assert len(path) == ns.distance(a, b) + 1
    # consecutive path nodes are namespace neighbors
    for u, v in zip(path, path[1:]):
        assert v in ns.neighbors(u)
    # distance decreases strictly along the path (incremental progress)
    dists = [ns.distance(v, b) for v in path]
    assert dists == sorted(dists, reverse=True)
    assert len(set(dists)) == len(dists)


@given(trees, st.data())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_lca_properties(ns, data):
    n = len(ns)
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    l = ns.lca(a, b)
    assert ns.is_ancestor(l, a)
    assert ns.is_ancestor(l, b)
    # deepest common ancestor: l's children toward a and b differ
    assert ns.depth[l] == ns.lca_depth(a, b)


# ---------------------------------------------------------------------------
# names round-trip
# ---------------------------------------------------------------------------

components = st.lists(
    st.text(
        alphabet=st.characters(
            blacklist_characters="/\x00", blacklist_categories=("Cs",)
        ),
        min_size=1,
        max_size=8,
    ).filter(lambda c: c not in (".", "..")),
    min_size=0,
    max_size=6,
)


@given(components)
def test_name_split_join_roundtrip(comps):
    name = join(*comps)
    assert split(name) == tuple(comps)


@given(components)
def test_ancestors_are_prefixes(comps):
    name = join(*comps)
    anc = ancestors_of_name(name)
    assert anc[0] == "/"
    assert anc[-1] == name
    assert len(anc) == len(comps) + 1
    for a in anc:
        assert is_prefix(a, name)


# ---------------------------------------------------------------------------
# Bloom filter: no false negatives, ever
# ---------------------------------------------------------------------------

@given(
    st.lists(st.integers(min_value=0, max_value=2**62), max_size=200),
    st.integers(min_value=64, max_value=2048),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40)
def test_bloom_no_false_negatives(keys, bits, hashes):
    bf = BloomFilter(bits, hashes)
    bf.update(keys)
    for k in keys:
        assert k in bf


@given(st.lists(st.integers(min_value=0, max_value=2**62), max_size=100))
def test_bloom_snapshot_equivalent_to_filter(keys):
    bf = BloomFilter(512, 4)
    bf.update(keys)
    snap = bf.snapshot()
    for k in list(keys) + [1, 2, 3]:
        assert bf.test_snapshot(snap, k) == (k in bf)


# ---------------------------------------------------------------------------
# map merging invariants
# ---------------------------------------------------------------------------

server_lists = st.lists(st.integers(0, 50), max_size=12)


@given(server_lists, server_lists, st.integers(1, 8),
       st.lists(st.integers(0, 50), max_size=4, unique=True),
       st.integers(0, 2**31 - 1))
def test_merge_maps_invariants(mine, incoming, rmap, advertised, seed):
    rng = random.Random(seed)
    out = merge_maps(mine, incoming, rmap, rng, advertised=advertised)
    # bounded and duplicate-free
    assert len(out) <= rmap
    assert len(set(out)) == len(out)
    # only known servers appear
    assert set(out) <= set(mine) | set(incoming) | set(advertised)
    # advertised entries kept first, up to rmap
    kept_adverts = advertised[:rmap]
    assert out[: len(kept_adverts)] == kept_adverts
    # nothing dropped while room remains
    pool = set(mine) | set(incoming) | set(advertised)
    assert len(out) == min(rmap, len(pool))


# ---------------------------------------------------------------------------
# ranking invariants
# ---------------------------------------------------------------------------

@given(
    st.dictionaries(st.integers(0, 30), st.floats(0, 1e6), max_size=12),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_top_k_for_fraction_is_minimal_prefix(weights, fraction):
    r = NodeRanking()
    for node, w in weights.items():
        r.track(node)
        r.hit(node, w)
    top = r.top_k_for_fraction(fraction)
    if not weights:
        assert top == []
        return
    assert len(top) >= 1
    ranked = [n for n, _ in r.ranked()]
    # the selection is a prefix of the ranking
    assert top == ranked[: len(top)]
    total = sum(weights.values())
    if total > 0:
        got = sum(weights[n] for n in top)
        assert got >= fraction * total - 1e-9
        # minimality: dropping the last element breaks the target
        if len(top) > 1:
            assert got - weights[top[-1]] < fraction * total


@given(st.dictionaries(
    st.integers(0, 30),
    st.floats(min_value=1e-3, max_value=1e6, allow_subnormal=False),
    min_size=1, max_size=12,
))
def test_rescale_preserves_ranking_order(weights):
    # ties (including float-underflow-induced ones) may legitimately
    # reorder by node id, so only well-separated weights are asserted
    r = NodeRanking(decay=0.3)
    for node, w in weights.items():
        r.track(node)
        r.hit(node, w)
    sep = sorted(weights.values())
    if any(b - a < 1e-9 * max(b, 1.0) for a, b in zip(sep, sep[1:])):
        return
    before = [n for n, _ in r.ranked()]
    r.rescale()
    assert [n for n, _ in r.ranked()] == before


# ---------------------------------------------------------------------------
# Zipf sampler
# ---------------------------------------------------------------------------

@given(st.integers(1, 500), st.floats(0.0, 3.0), st.integers(0, 2**31 - 1))
@settings(max_examples=40)
def test_zipf_samples_in_range(n, alpha, seed):
    z = ZipfSampler(n, alpha)
    rng = random.Random(seed)
    for _ in range(20):
        assert 0 <= z.sample(rng) < n


@given(st.integers(2, 300), st.floats(0.1, 3.0))
@settings(max_examples=40)
def test_zipf_pmf_normalised_and_monotone(n, alpha):
    z = ZipfSampler(n, alpha)
    pm = [z.pmf(i) for i in range(n)]
    assert abs(sum(pm) - 1.0) < 1e-6
    assert all(a >= b - 1e-12 for a, b in zip(pm, pm[1:]))


# ---------------------------------------------------------------------------
# smoothing
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50),
       st.integers(1, 15))
def test_smoothing_bounded_by_extremes(series, window):
    out = WindowAverager.smooth(series, window)
    assert len(out) == len(series)
    lo, hi = min(series), max(series)
    assert all(lo - 1e-9 <= v <= hi + 1e-9 for v in out)


# ---------------------------------------------------------------------------
# routing decision invariants on randomized system snapshots
# ---------------------------------------------------------------------------

@given(
    st.integers(0, 2**16),       # build seed
    st.integers(4, 8),           # levels
    st.data(),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_routing_decision_invariants(seed, levels, data):
    from repro.cluster.builder import build_system
    from repro.cluster.config import SystemConfig
    from repro.core import routing
    from repro.namespace.generators import balanced_tree

    ns = balanced_tree(levels=levels)
    cfg = SystemConfig.replicated(n_servers=4, seed=seed,
                                  digest_probe_limit=1,
                                  bootstrap_known_peers=0)
    system = build_system(ns, cfg)
    peer = system.peers[data.draw(st.integers(0, 3))]
    # salt the soft state with random cache entries and digests
    for _ in range(data.draw(st.integers(0, 8))):
        node = data.draw(st.integers(0, len(ns) - 1))
        server = data.draw(st.integers(0, 3))
        peer.cache.put(node, [server])
    other = system.peers[(peer.sid + 1) % 4]
    peer.digest_dir.observe(other.sid, other.digest.snapshot())

    dest = data.draw(st.integers(0, len(ns) - 1))
    decision = routing.decide(peer, dest)

    if peer.hosts(dest):
        assert decision.action is routing.RouteAction.RESOLVED
        return
    assert decision.action is routing.RouteAction.FORWARD
    # never forwards to itself
    assert decision.next_server != peer.sid
    assert 0 <= decision.next_server < 4
    # the candidate is strictly closer to the destination than the
    # closest hosted node (incremental progress, section 2.2.2)
    closest = min(ns.distance(h, dest) for h in peer.iter_hosted())
    assert ns.distance(decision.via, dest) < closest
    assert decision.distance == ns.distance(decision.via, dest)
