"""Validate the queueing substrate against M/M/1/K theory.

A single simulated server fed direct Poisson lookups for its own nodes
is exactly an M/M/1/K queue (K = queue_size + 1): the measured drop
probability and utilisation must match the closed-form results within
sampling error.  This pins down the correctness of the DES engine, the
exponential sampler, the bounded queue, and the busy-time meter in one
end-to-end check.
"""

import math

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.sim.queueing_theory import (
    mm1k_blocking_probability,
    mm1k_mean_number_in_system,
    mm1k_mean_response_time,
    mm1k_state_probabilities,
    mm1k_throughput,
    mm1k_utilization,
)
from repro.sim.rng import exponential
import random


class TestClosedForms:
    def test_probabilities_sum_to_one(self):
        for rho in (0.1, 0.5, 0.9, 1.0, 1.5, 3.0):
            probs = mm1k_state_probabilities(rho, 12)
            assert math.isclose(sum(probs), 1.0, rel_tol=1e-9)

    def test_rho_one_uniform(self):
        probs = mm1k_state_probabilities(1.0, 4)
        assert all(math.isclose(p, 0.2) for p in probs)

    def test_blocking_monotone_in_rho(self):
        bs = [mm1k_blocking_probability(r, 12) for r in (0.2, 0.6, 1.0, 2.0)]
        assert bs == sorted(bs)

    def test_blocking_decreases_with_k(self):
        assert mm1k_blocking_probability(0.8, 24) < mm1k_blocking_probability(
            0.8, 6
        )

    def test_utilization_below_rho(self):
        assert mm1k_utilization(0.5, 12) <= 0.5 + 1e-12

    def test_throughput_conserved(self):
        # accepted rate never exceeds service capacity
        assert mm1k_throughput(lam=300.0, mu=200.0, k=13) <= 200.0

    def test_response_time_littles_law(self):
        lam, mu, k = 150.0, 200.0, 13
        t = mm1k_mean_response_time(lam, mu, k)
        n = mm1k_mean_number_in_system(lam / mu, k)
        thr = mm1k_throughput(lam, mu, k)
        assert math.isclose(t * thr, n, rel_tol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1k_state_probabilities(-0.1, 4)
        with pytest.raises(ValueError):
            mm1k_state_probabilities(0.5, 0)
        with pytest.raises(ValueError):
            mm1k_throughput(1.0, 0.0, 4)


def _run_single_server(rho: float, seed: int = 1, horizon: float = 400.0):
    """One server, K = queue_size+1 = 13, all lookups locally owned."""
    ns = balanced_tree(levels=3)  # 15 nodes, one server owns all
    cfg = SystemConfig.base(
        n_servers=1, seed=seed, queue_size=12, service_mean=0.005,
        net_delay=0.0, replication_enabled=False,
    )
    system = build_system(ns, cfg)
    mu = 1.0 / cfg.service_mean
    lam = rho * mu
    rng = random.Random(seed)
    t = 0.0
    while True:
        t += exponential(rng, 1.0 / lam)
        if t >= horizon:
            break
        system.engine.schedule(t, system.inject, 0, rng.randrange(len(ns)))
    system.run_until(horizon + 1.0)
    return system, 13


class TestSimulationMatchesTheory:
    @pytest.mark.parametrize("rho", [0.5, 0.9, 1.3])
    def test_drop_probability(self, rho):
        system, k = _run_single_server(rho)
        expected = mm1k_blocking_probability(rho, k)
        measured = system.stats.drop_fraction
        # ~60-100k arrivals: allow 20% relative + small absolute slack
        assert measured == pytest.approx(expected, rel=0.25, abs=0.01)

    @pytest.mark.parametrize("rho", [0.5, 0.9])
    def test_utilization(self, rho):
        system, k = _run_single_server(rho)
        expected = mm1k_utilization(rho, k)
        means = system.stats.loads.means()
        steady = means[5:]
        measured = sum(steady) / len(steady)
        assert measured == pytest.approx(expected, rel=0.1)

    def test_overload_throughput_saturates(self):
        system, k = _run_single_server(2.0, horizon=200.0)
        # accepted throughput ~ mu = 200/s
        accepted = system.stats.n_completed / 200.0
        assert accepted == pytest.approx(200.0, rel=0.1)
