"""Unit tests for load-based node ranking (paper section 3.2)."""

import pytest

from repro.core.ranking import NodeRanking


class TestTracking:
    def test_track_and_hit(self):
        r = NodeRanking()
        r.track(1)
        r.hit(1)
        r.hit(1, 2.0)
        assert r.weight(1) == 3.0

    def test_untracked_hits_dropped(self):
        r = NodeRanking()
        r.hit(5)
        assert r.weight(5) == 0.0
        assert 5 not in r

    def test_forget(self):
        r = NodeRanking()
        r.track(1)
        r.hit(1)
        r.forget(1)
        assert 1 not in r
        assert r.weight(1) == 0.0

    def test_total_weight(self):
        r = NodeRanking()
        r.track(1)
        r.track(2)
        r.hit(1, 3.0)
        r.hit(2, 2.0)
        assert r.total_weight() == 5.0


class TestRescale:
    def test_decay(self):
        r = NodeRanking(decay=0.5)
        r.track(1)
        r.hit(1, 8.0)
        r.rescale()
        assert r.weight(1) == 4.0

    def test_rescale_preserves_order(self):
        r = NodeRanking(decay=0.25)
        for n, w in ((1, 10.0), (2, 5.0), (3, 1.0)):
            r.track(n)
            r.hit(n, w)
        before = [n for n, _ in r.ranked()]
        r.rescale()
        assert [n for n, _ in r.ranked()] == before

    def test_recent_demand_dominates_after_decay(self):
        """Rescaling approximates *recent* demand: an old hot node
        yields its rank to a newly hot node after a few decays."""
        r = NodeRanking(decay=0.1)
        r.track(1)
        r.track(2)
        r.hit(1, 100.0)
        for _ in range(3):
            r.rescale()
        r.hit(2, 10.0)
        ranked = [n for n, _ in r.ranked()]
        assert ranked[0] == 2

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            NodeRanking(decay=1.5)


class TestRanked:
    def test_descending_with_deterministic_ties(self):
        r = NodeRanking()
        for n in (3, 1, 2):
            r.track(n)
        r.hit(2, 5.0)
        assert r.ranked() == [(2, 5.0), (1, 0.0), (3, 0.0)]

    def test_among_restricts(self):
        r = NodeRanking()
        for n in (1, 2, 3):
            r.track(n)
            r.hit(n, float(n))
        assert [n for n, _ in r.ranked(among=[1, 3])] == [3, 1]


class TestTopKForFraction:
    def _ranking(self):
        r = NodeRanking()
        for n, w in ((1, 50.0), (2, 30.0), (3, 15.0), (4, 5.0)):
            r.track(n)
            r.hit(n, w)
        return r

    def test_exact_prefix(self):
        r = self._ranking()
        assert r.top_k_for_fraction(0.5) == [1]
        assert r.top_k_for_fraction(0.8) == [1, 2]
        assert r.top_k_for_fraction(0.95) == [1, 2, 3]
        assert r.top_k_for_fraction(1.0) == [1, 2, 3, 4]

    def test_zero_fraction_ships_top_node(self):
        """Paper step 3: k is the smallest count reaching the target;
        with target 0 that is still one node (something must move)."""
        r = self._ranking()
        assert r.top_k_for_fraction(0.0) == [1]

    def test_cold_counters_still_ship_one(self):
        r = NodeRanking()
        r.track(9)
        assert r.top_k_for_fraction(0.5) == [9]

    def test_empty_ranking(self):
        assert NodeRanking().top_k_for_fraction(0.5) == []

    def test_among_subset(self):
        r = self._ranking()
        assert r.top_k_for_fraction(0.4, among=[2, 3, 4]) == [2]


class TestBottom:
    def test_lowest_ranked_first(self):
        r = NodeRanking()
        for n, w in ((1, 5.0), (2, 1.0), (3, 3.0)):
            r.track(n)
            r.hit(n, w)
        assert r.bottom(2) == [2, 3]

    def test_among(self):
        r = NodeRanking()
        for n, w in ((1, 5.0), (2, 1.0), (3, 3.0)):
            r.track(n)
            r.hit(n, w)
        assert r.bottom(1, among=[1, 3]) == [3]
