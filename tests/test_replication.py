"""Unit tests for the replication protocol (paper section 3)."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree


def make_system(n_servers=8, levels=5, **over):
    ns = balanced_tree(levels=levels)
    defaults = dict(
        n_servers=n_servers, seed=2, bootstrap_known_peers=0,
        l_high=0.7, delta_min=0.2, rfact=2.0,
    )
    defaults.update(over)
    cfg = SystemConfig.replicated(**defaults)
    return ns, build_system(ns, cfg)


def force_load(peer, value):
    """Pin a peer's instantaneous load via the hysteresis adjustment."""
    peer.meter.apply_adjustment(value - peer.meter.load())


def run_control_roundtrips(system, n=6):
    """Dispatch pending events long enough for probe/transfer/ack."""
    system.engine.run(until=system.engine.now + n * system.cfg.net_delay + 1e-9)


class TestTrigger:
    def test_no_trigger_below_threshold(self):
        ns, system = make_system()
        p = system.peers[0]
        p.known_loads[1] = (0.0, 0.0)
        force_load(p, 0.5)
        assert not p.repl.maybe_trigger(0.0)

    def test_trigger_above_threshold(self):
        ns, system = make_system()
        p = system.peers[0]
        p.known_loads[1] = (0.0, 0.0)
        force_load(p, 0.9)
        assert p.repl.maybe_trigger(0.0)
        assert p.repl.in_session

    def test_no_concurrent_sessions(self):
        ns, system = make_system()
        p = system.peers[0]
        p.known_loads[1] = (0.0, 0.0)
        force_load(p, 0.9)
        assert p.repl.maybe_trigger(0.0)
        assert not p.repl.maybe_trigger(0.0)

    def test_disabled_never_triggers(self):
        ns, system = make_system(replication_enabled=False)
        p = system.peers[0]
        p.known_loads[1] = (0.0, 0.0)
        force_load(p, 0.99)
        assert not p.repl.maybe_trigger(0.0)

    def test_no_candidates_aborts(self):
        ns, system = make_system()
        p = system.peers[0]
        force_load(p, 0.9)
        assert not p.repl.maybe_trigger(0.0)  # knows nobody
        assert not p.repl.in_session
        assert p.repl.n_sessions_aborted == 1
        assert p.repl.next_allowed > 0.0  # back-off in force


class TestFullSession:
    def test_replicas_shipped_to_idle_target(self):
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        src.known_loads[1] = (0.0, 0.0)
        # make one node clearly hottest
        hot = next(iter(src.owned))
        src.ranking.hit(hot, 100.0)
        force_load(src, 1.0)
        assert src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system)
        assert dst.hosts(hot)
        assert not src.repl.in_session
        assert dst.repl.n_replicas_installed >= 1
        assert src.repl.n_replicas_shipped >= 1

    def test_created_replicas_advertised_by_source(self):
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        src.known_loads[1] = (0.0, 0.0)
        hot = next(iter(src.owned))
        src.ranking.hit(hot, 100.0)
        force_load(src, 1.0)
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system)
        assert 1 in src.adverts_recent.get(hot, ())
        assert 1 in src.maps[hot]  # advertised entry entered the map

    def test_hysteresis_applied_both_sides(self):
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        src.known_loads[1] = (0.0, 0.0)
        hot = next(iter(src.owned))
        src.ranking.hit(hot, 100.0)
        force_load(src, 1.0)
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system)
        # source booked -(ls-lt)/2 = -0.5, target +0.5
        assert src.meter.load() == pytest.approx(0.5, abs=0.05)
        assert dst.meter.load() == pytest.approx(0.5, abs=0.05)

    def test_replica_has_routing_context(self):
        """Routing through a replica is functionally equivalent to
        routing through the original (paper constraint 2)."""
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        src.known_loads[1] = (0.0, 0.0)
        hot = next(iter(src.owned))
        src.ranking.hit(hot, 100.0)
        force_load(src, 1.0)
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system)
        for nbr in ns.neighbors(hot):
            assert nbr in dst.maps

    def test_weight_fraction_selects_enough_nodes(self):
        """Creation step 3: ship the smallest top-ranked prefix whose
        weight reaches (ls - lt) / (2 ls)."""
        ns, system = make_system()
        src = system.peers[0]
        owned = sorted(src.owned)
        # equal weights: fraction (1.0-0.0)/(2*1.0)=0.5 needs half of them
        for v in owned:
            src.ranking.hit(v, 10.0)
        src.known_loads[1] = (0.0, 0.0)
        force_load(src, 1.0)
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system)
        shipped = src.repl.n_replicas_shipped
        expected = -(-len(owned) // 2)  # ceil(half)
        assert shipped == expected


class TestRetryAbort:
    def test_unwilling_target_triggers_retry(self):
        ns, system = make_system(max_attempts=2)
        src = system.peers[0]
        # two candidates, both as loaded as the source -> both refuse
        for sid in (1, 2):
            src.known_loads[sid] = (0.0, 0.0)
            force_load(system.peers[sid], 0.95)
        force_load(src, 1.0)
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system, n=10)
        assert not src.repl.in_session
        assert src.repl.n_sessions_aborted == 1
        assert system.total_replicas() == 0

    def test_backoff_blocks_new_session(self):
        ns, system = make_system(max_attempts=1, session_backoff=5.0)
        src = system.peers[0]
        src.known_loads[1] = (0.0, 0.0)
        force_load(system.peers[1], 0.95)
        force_load(src, 1.0)
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system, n=10)
        t = system.engine.now
        force_load(src, 1.0)
        assert not src.repl.maybe_trigger(t)  # still inside back-off
        assert src.repl.maybe_trigger(t + 5.0)

    def test_second_candidate_used_after_first_refuses(self):
        ns, system = make_system(max_attempts=3)
        src = system.peers[0]
        src.known_loads[1] = (0.0, 0.0)
        src.known_loads[2] = (0.1, 0.0)
        force_load(system.peers[1], 0.95)  # min-believed-load target refuses
        hot = next(iter(src.owned))
        src.ranking.hit(hot, 50.0)
        force_load(src, 1.0)
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system, n=12)
        assert system.peers[2].hosts(hot)


class TestTargetAdmission:
    def test_target_refuses_small_gap(self):
        ns, system = make_system(delta_min=0.2)
        src, dst = system.peers[0], system.peers[1]
        src.known_loads[1] = (0.0, 0.0)
        force_load(dst, 0.85)
        force_load(src, 1.0)  # gap 0.15 < delta_min
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system, n=10)
        assert system.total_replicas() == 0

    def test_rfact_capacity_evicts_lowest_ranked(self):
        """Section 3.5: installs beyond rfact * |owned| evict the
        target's lowest-ranked replicas."""
        ns, system = make_system(n_servers=8, levels=5, rfact=0.1)
        src, dst = system.peers[0], system.peers[1]
        # capacity = max(1, int(0.1 * ~8 owned)) -> a single replica slot
        cap = dst.repl.replica_capacity()
        assert cap == 1
        owned = sorted(src.owned)
        src.known_loads[1] = (0.0, 0.0)
        # session 1: ship one node
        src.ranking.hit(owned[0], 100.0)
        force_load(src, 1.0)
        src.repl.maybe_trigger(0.0)
        run_control_roundtrips(system)
        assert dst.hosts(owned[0])
        # session 2: hotter node displaces the cold replica
        t = system.engine.now + 1.0
        system.engine.run(until=t)
        src.ranking.hit(owned[1], 1000.0)
        force_load(src, 1.0)
        src.known_loads[1] = (0.0, t)
        force_load(dst, 0.0)
        src.repl.maybe_trigger(t)
        run_control_roundtrips(system)
        assert dst.hosts(owned[1])
        assert not dst.hosts(owned[0])
        assert len(dst.replicas) <= cap

    def test_duplicate_transfer_merges_maps_only(self):
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        hot = next(iter(src.owned))
        payload = src.build_replica_payload(hot)
        dst.install_replica(payload, 0.0)
        n_before = len(dst.replicas)
        from repro.net.message import TransferMessage
        dst.repl.on_transfer(TransferMessage(99, src.sid, [payload]), 0.0)
        assert len(dst.replicas) == n_before  # no double install


class TestEviction:
    def test_evicted_replica_unpins_context(self):
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        hot = next(iter(src.owned))
        pins_before = dict(dst.pin_refs)
        dst.install_replica(src.build_replica_payload(hot), 0.0)
        dst.evict_replica(hot, 1.0)
        assert dict(dst.pin_refs) == pins_before
        assert not dst.hosts(hot)

    def test_eviction_rebuilds_digest(self):
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        hot = next(iter(src.owned))
        dst.install_replica(src.build_replica_payload(hot), 0.0)
        assert hot in dst.digest
        dst.evict_replica(hot, 1.0)
        assert hot not in dst.digest

    def test_idle_timeout_eviction(self):
        ns, system = make_system(replica_idle_timeout=10.0)
        src, dst = system.peers[0], system.peers[1]
        hot = next(iter(src.owned))
        dst.install_replica(src.build_replica_payload(hot), 0.0)
        assert dst.evict_idle_replicas(5.0) == 0
        assert dst.evict_idle_replicas(20.0) == 1
        assert not dst.hosts(hot)

    def test_idle_eviction_disabled_by_default(self):
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        hot = next(iter(src.owned))
        dst.install_replica(src.build_replica_payload(hot), 0.0)
        assert dst.evict_idle_replicas(1e9) == 0


class TestAutoThreshold:
    """Section 3.1: the high-water threshold 'can automatically be set
    in proportion to the overall system utilization'."""

    def test_fixed_by_default(self):
        ns, system = make_system()
        assert system.peers[0].repl.threshold() == system.cfg.l_high

    def test_auto_tracks_estimated_utilization(self):
        ns, system = make_system(l_high_auto=True, l_high_factor=2.0,
                                 l_high_floor=0.3)
        p = system.peers[0]
        # system believed idle -> threshold clamps to the floor
        p.known_loads[1] = (0.0, 0.0)
        assert p.repl.threshold() == pytest.approx(0.3)
        # heard-about load raises the estimate and the threshold
        p.known_loads[1] = (0.6, 0.0)
        p.known_loads[2] = (0.6, 0.0)
        est = (0.0 + 0.6 + 0.6) / 3
        assert p.repl.threshold() == pytest.approx(2.0 * est)

    def test_auto_threshold_capped(self):
        ns, system = make_system(l_high_auto=True, l_high_factor=2.0)
        p = system.peers[0]
        force_load(p, 1.0)
        for sid in (1, 2, 3):
            p.known_loads[sid] = (1.0, 0.0)
        assert p.repl.threshold() == 0.95

    def test_auto_triggers_earlier_on_idle_system(self):
        """At low overall utilisation the auto policy replicates a
        moderately loaded server that the fixed 0.7 threshold ignores."""
        ns, system = make_system(l_high_auto=True, l_high_factor=1.5,
                                 l_high_floor=0.3)
        p = system.peers[0]
        p.known_loads[1] = (0.05, 0.0)
        force_load(p, 0.5)  # estimate ~0.275 -> threshold ~0.41 < 0.5
        assert p.repl.maybe_trigger(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_system(l_high_factor=0.0)
        with pytest.raises(ValueError):
            make_system(l_high_floor=0.0)


class TestPerServerRfact:
    """Section 3.4: 'The replication factor need not be the same for
    all servers' -- the cap is a locally enforced policy."""

    def test_defaults_to_config(self):
        ns, system = make_system(rfact=2.0)
        p = system.peers[0]
        assert p.rfact == 2.0
        assert p.repl.replica_capacity() == max(1, int(2.0 * len(p.owned)))

    def test_local_override_changes_capacity(self):
        ns, system = make_system(rfact=2.0)
        p = system.peers[1]
        p.rfact = 0.0
        assert p.repl.replica_capacity() == 1  # floor of one replica slot
        p.rfact = 5.0
        assert p.repl.replica_capacity() == 5 * len(p.owned)

    def test_override_enforced_on_install(self):
        ns, system = make_system()
        src, dst = system.peers[0], system.peers[1]
        dst.rfact = 0.0  # one replica slot only
        owned = sorted(src.owned)[:3]
        for node in owned:
            from repro.net.message import TransferMessage
            payload = src.build_replica_payload(node)
            dst.repl.on_transfer(TransferMessage(1, src.sid, [payload]), 0.0)
        assert len(dst.replicas) <= 1
