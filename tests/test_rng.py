"""Unit tests for RNG streams and the bounded Zipf sampler."""

import math
import random

import pytest

from repro.sim.rng import (
    RngStreams,
    ZipfSampler,
    exponential,
    poisson_arrival_times,
)


class TestStreams:
    def test_named_streams_independent(self):
        rs = RngStreams(1)
        a = rs.stream("a")
        b = rs.stream("b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_same_name_same_stream(self):
        rs = RngStreams(1)
        assert rs.stream("x") is rs.stream("x")

    def test_reproducible_across_families(self):
        xs = [RngStreams(7).stream("q").random() for _ in range(2)]
        assert xs[0] == xs[1]

    def test_spawn_differs_from_parent(self):
        rs = RngStreams(7)
        child = rs.spawn("c")
        assert child.master_seed != rs.master_seed


class TestExponential:
    def test_mean(self):
        rng = random.Random(0)
        xs = [exponential(rng, 2.0) for _ in range(20_000)]
        assert abs(sum(xs) / len(xs) - 2.0) < 0.1

    def test_positive(self):
        rng = random.Random(0)
        assert all(exponential(rng, 0.5) > 0 for _ in range(1000))

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            exponential(random.Random(0), 0.0)


class TestPoisson:
    def test_rate(self):
        rng = random.Random(1)
        ts = poisson_arrival_times(rng, rate=100.0, horizon=50.0)
        assert abs(len(ts) / 50.0 - 100.0) < 10.0

    def test_sorted_within_horizon(self):
        rng = random.Random(1)
        ts = poisson_arrival_times(rng, rate=10.0, horizon=5.0)
        assert ts == sorted(ts)
        assert all(0 < t < 5.0 for t in ts)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(random.Random(0), 0.0, 1.0)


class TestZipf:
    def test_uniform_degenerate(self):
        z = ZipfSampler(10, alpha=0.0)
        rng = random.Random(0)
        counts = [0] * 10
        for _ in range(10_000):
            counts[z.sample(rng)] += 1
        assert max(counts) / min(counts) < 1.5

    def test_pmf_sums_to_one(self):
        for alpha in (0.0, 0.75, 1.0, 1.5):
            z = ZipfSampler(100, alpha)
            assert math.isclose(sum(z.pmf(i) for i in range(100)), 1.0,
                                rel_tol=1e-9)

    def test_pmf_monotone_decreasing(self):
        z = ZipfSampler(50, alpha=1.0)
        pm = [z.pmf(i) for i in range(50)]
        assert all(a >= b for a, b in zip(pm, pm[1:]))

    def test_zipf_ratio_matches_law(self):
        """P(rank 1) / P(rank 2) == 2**alpha."""
        alpha = 1.25
        z = ZipfSampler(1000, alpha)
        assert math.isclose(z.pmf(0) / z.pmf(1), 2**alpha, rel_tol=1e-9)

    def test_sampling_tracks_pmf(self):
        z = ZipfSampler(20, alpha=1.0)
        rng = random.Random(42)
        n = 50_000
        counts = [0] * 20
        for _ in range(n):
            counts[z.sample(rng)] += 1
        for rank in (0, 1, 5):
            assert abs(counts[rank] / n - z.pmf(rank)) < 0.01

    def test_sample_many_matches_range(self):
        z = ZipfSampler(30, alpha=1.5)
        rng = random.Random(0)
        xs = z.sample_many(rng, 1000)
        assert xs.min() >= 0 and xs.max() < 30

    def test_higher_alpha_more_skew(self):
        rng = random.Random(9)
        lo = ZipfSampler(100, 0.75)
        hi = ZipfSampler(100, 1.5)
        n = 20_000
        top_lo = sum(1 for _ in range(n) if lo.sample(rng) == 0) / n
        top_hi = sum(1 for _ in range(n) if hi.sample(rng) == 0) / n
        assert top_hi > top_lo

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0)
        with pytest.raises(IndexError):
            ZipfSampler(10, 1.0).pmf(10)
