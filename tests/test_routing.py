"""Unit tests for the routing procedure, including the paper's Fig. 1
and Fig. 2 walk-throughs."""

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.core.routing import RouteAction, decide, inferable_names
from repro.namespace.generators import university_tree


def uni_system(**cfg_over):
    """University tree with one server per node (owner = node id order)."""
    ns = university_tree()
    defaults = dict(n_servers=len(ns), seed=1, bootstrap_known_peers=0)
    defaults.update(cfg_over)
    cfg = SystemConfig.replicated(**defaults)
    owner = list(range(len(ns)))  # server i owns node i
    system = build_system(ns, cfg, owner=owner)
    return ns, system


class TestResolution:
    def test_owned_resolves(self):
        ns, system = uni_system()
        v = ns.id_of("/university/public")
        d = decide(system.peers[v], v)
        assert d.action is RouteAction.RESOLVED
        assert d.distance == 0

    def test_replica_resolves(self):
        """Lookup queries can be resolved by reaching a replica
        (paper constraint 1, section 2.3)."""
        ns, system = uni_system()
        target = ns.id_of("/university/private/people")
        owner_peer = system.peers[target]
        other = system.peers[ns.id_of("/university/public/people")]
        payload = owner_peer.build_replica_payload(target)
        other.install_replica(payload, now=0.0)
        d = decide(other, target)
        assert d.action is RouteAction.RESOLVED


class TestDirectAndStructural:
    def test_neighbor_map_gives_direct_hop(self):
        ns, system = uni_system()
        parent = ns.id_of("/university/public")
        child = ns.id_of("/university/public/people")
        d = decide(system.peers[parent], child)
        assert d.action is RouteAction.FORWARD
        assert d.via == child
        assert d.next_server == child  # owner == node id
        assert d.distance == 0

    def test_structural_step_climbs_toward_lca(self):
        ns, system = uni_system(digests_enabled=False, caching_enabled=False)
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private")
        d = decide(system.peers[src], dst)
        assert d.action is RouteAction.FORWARD
        assert d.via == ns.id_of("/university/public/people")
        assert d.source == "struct"

    def test_structural_step_descends_when_ancestor(self):
        ns, system = uni_system(digests_enabled=False, caching_enabled=False)
        root_owner = system.peers[0]  # owns "/"
        dst = ns.id_of("/university/private/people/staff/Ann")
        d = decide(root_owner, dst)
        assert d.via == ns.id_of("/university")

    def test_progress_is_incremental(self):
        """Each structural decision strictly decreases namespace
        distance (paper section 2.2.2)."""
        ns, system = uni_system(digests_enabled=False, caching_enabled=False)
        dst = ns.id_of("/university/private/people/faculty/Lisa")
        cur = ns.id_of("/university/public/people/students/John")
        dist = ns.distance(cur, dst)
        hops = 0
        while cur != dst:
            d = decide(system.peers[cur], dst)
            if d.action is RouteAction.RESOLVED:
                break
            assert d.action is RouteAction.FORWARD
            new_dist = ns.distance(d.via, dst)
            assert new_dist < dist
            cur, dist = d.next_server, new_dist
            hops += 1
            assert hops < 20

    def test_full_route_follows_up_down_path(self):
        """Without caches/digests the hop sequence is the canonical
        up-then-down path of paper Fig. 1 step semantics."""
        ns, system = uni_system(digests_enabled=False, caching_enabled=False)
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private")
        walked = [src]
        cur = src
        while True:
            d = decide(system.peers[cur], dst)
            if d.action is RouteAction.RESOLVED:
                break
            cur = d.next_server
            walked.append(cur)
        assert walked == ns.route_path(src, dst)


class TestCacheShortcuts:
    def test_cached_destination_wins(self):
        ns, system = uni_system(digests_enabled=False)
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private/people/staff/Ann")
        peer = system.peers[src]
        peer.cache.put(dst, [dst])
        d = decide(peer, dst)
        assert d.source == "cache"
        assert d.via == dst
        assert d.distance == 0

    def test_cached_near_node_beats_structural(self):
        ns, system = uni_system(digests_enabled=False)
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private/people/staff/Ann")
        near = ns.id_of("/university/private/people")
        peer = system.peers[src]
        peer.cache.put(near, [near])
        d = decide(peer, dst)
        assert d.source == "cache"
        assert d.via == near
        assert d.distance == ns.distance(near, dst)

    def test_far_cache_entry_ignored(self):
        ns, system = uni_system(digests_enabled=False)
        src = ns.id_of("/university/public/people")
        dst = ns.id_of("/university/public/people/students")
        far = ns.id_of("/university/private/people/staff")
        peer = system.peers[src]
        peer.cache.put(far, [far])
        d = decide(peer, dst)
        assert d.source == "direct"  # child map wins at distance 0

    def test_grandchild_routes_through_child(self):
        ns, system = uni_system(digests_enabled=False)
        src = ns.id_of("/university/public/people")
        dst = ns.id_of("/university/public/people/students/John")
        d = decide(system.peers[src], dst)
        assert d.source == "struct"
        assert d.via == ns.id_of("/university/public/people/students")
        assert d.distance == 1

    def test_dead_cache_entry_removed_and_fallback(self):
        """A cache entry whose only host is this server is useless;
        routing drops it and falls back to the structural hop."""
        ns, system = uni_system(digests_enabled=False)
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private/people/staff/Ann")
        near = ns.id_of("/university/private/people/staff")
        peer = system.peers[src]
        peer.cache.put(near, [peer.sid])  # bogus self-pointing entry
        d = decide(peer, dst)
        assert d.source == "struct"
        assert near not in peer.cache


class TestDigestShortcuts:
    def test_fig2_digest_hit_skips_intermediate_node(self):
        """Paper Fig. 2: server S hosts .../people/faculty and
        .../students/John; its cache points Steve -> S_d; S_d's digest
        contains /university/public, so S forwards straight to S_d,
        skipping /university/public/people."""
        ns, system = uni_system(caching_enabled=True)
        s = system.peers[ns.id_of("/university/public/people/faculty")]
        john = ns.id_of("/university/public/people/students/John")
        s.adopt_node(john)  # S hosts both nodes, as in the figure

        # S_d hosts /university/public (plus Steve, whose map S caches)
        pub = ns.id_of("/university/public")
        steve = ns.id_of("/university/public/people/students/Steve")
        s_d = system.peers[ns.id_of("/university/private/people/staff/Mary")]
        for node in (pub, steve):
            s_d.adopt_node(node)
        s.cache.put(steve, [s_d.sid])
        s.digest_dir.observe(s_d.sid, s_d.digest.snapshot())

        # a query destined to /university/public at S would normally
        # climb via /university/public/people (structural candidate,
        # distance 1); the digest hit on /university/public itself at
        # S_d reaches distance 0 and skips the people node entirely.
        d = decide(s, pub)
        assert d.source == "digest"
        assert d.via == pub
        assert d.next_server == s_d.sid
        assert d.distance == 0

    def test_digest_not_probed_when_no_gain_possible(self):
        ns, system = uni_system()
        parent = ns.id_of("/university/public")
        child = ns.id_of("/university/public/people")
        # direct map exists (distance 0): digest cannot improve
        d = decide(system.peers[parent], child)
        assert d.source == "direct"

    def test_stale_digest_can_mislead(self):
        """Digest hits are soft state: a stale snapshot may route to a
        server that evicted the node -- the query still progresses via
        that server's own state (verified at system level), and here we
        just confirm the stale shortcut is taken."""
        ns, system = uni_system()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/private/people/staff/Ann")
        anc = ns.id_of("/university/private/people/staff")
        peer = system.peers[src]
        other = system.peers[ns.id_of("/university/public")]
        other.digest.add(anc)  # other claims to host the ancestor
        peer.digest_dir.observe(other.sid, other.digest.snapshot())
        other.digest.rebuild([])  # ...then evicts it (snapshot now stale)
        d = decide(peer, dst)
        assert d.source == "digest"
        assert d.next_server == other.sid


class TestFailure:
    def test_fail_when_no_next_hop(self):
        ns, system = uni_system(digests_enabled=False, caching_enabled=False)
        src = ns.id_of("/university/public/people/students")
        peer = system.peers[src]
        dst = ns.id_of("/university/private")
        # sabotage every map so no forwarding choice remains
        for node in list(peer.maps):
            peer.maps[node] = []
        d = decide(peer, dst)
        assert d.action is RouteAction.FAIL


class TestInferableNames:
    def test_gen_s_includes_all_prefixes(self):
        """Gen(S) contains hosted, neighboring, cached names, the
        destination, and all their ancestors (paper section 3.6.1)."""
        ns, system = uni_system()
        sid = ns.id_of("/university/public/people/faculty")
        peer = system.peers[sid]
        steve = ns.id_of("/university/public/people/students/Steve")
        peer.cache.put(steve, [3])
        dst = ns.id_of("/university/private/people/staff/Ann")
        gen = set(inferable_names(peer, dst))
        for name in (
            "/",
            "/university",
            "/university/public",
            "/university/public/people",
            "/university/public/people/faculty",
            "/university/public/people/students",  # ancestor of cached Steve
            "/university/private/people/staff/Ann",  # the destination
            "/university/private/people",  # ancestor of the destination
        ):
            assert ns.id_of(name) in gen


class TestFig1Walkthrough:
    def test_replica_forwarding_equivalence(self):
        """Fig. 1 steps C-D: the owner of /university/public/people
        hosts a replica of /university/private/people; a query for
        /university/private reaching it is forwarded directly up the
        replica's child-parent link (step D), with no detour through
        the private subtree's owners."""
        ns, system = uni_system(digests_enabled=False)
        pub_people = ns.id_of("/university/public/people")
        priv_people = ns.id_of("/university/private/people")
        priv = ns.id_of("/university/private")

        host = system.peers[pub_people]
        owner = system.peers[priv_people]
        host.install_replica(owner.build_replica_payload(priv_people), 0.0)

        d = decide(host, priv)
        assert d.action is RouteAction.FORWARD
        assert d.via == priv  # neighbor map from the replica's context
        assert d.next_server == priv  # /university/private's owner
        assert d.distance == 0


class TestSelectionFiltering:
    """Map filtering at replica selection (paper section 3.7)."""

    def test_digest_denied_entries_skipped(self):
        ns, system = uni_system()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/public/people")
        peer = system.peers[src]
        phantom = system.peers[ns.id_of("/university/private")]
        # the direct map for dst gains a phantom host; its digest says no
        peer.maps[dst].append(phantom.sid)
        peer.digest_dir.observe(phantom.sid, phantom.digest.snapshot())
        for _ in range(30):
            d = decide(peer, dst)
            assert d.next_server != phantom.sid

    def test_unknown_digest_entries_still_selectable(self):
        ns, system = uni_system()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/public/people")
        peer = system.peers[src]
        peer.maps[dst].append(7)  # no digest known for server 7
        chosen = {decide(peer, dst).next_server for _ in range(50)}
        assert 7 in chosen

    def test_all_denied_falls_back_instead_of_failing(self):
        """Stale digests must never black-hole a reachable node."""
        ns, system = uni_system()
        src = ns.id_of("/university/public/people/students")
        dst = ns.id_of("/university/public/people")
        peer = system.peers[src]
        owner = system.peers[dst]
        # observe a digest snapshot for the true owner that predates it
        # hosting anything (empty) -> the filter would deny everything
        from repro.filters.digest import Digest
        empty = Digest(capacity=64, owner_server=owner.sid)
        peer.digest_dir.observe(owner.sid, (10**9, empty.snapshot()[1]))
        d = decide(peer, dst)
        assert d.action is RouteAction.FORWARD
        assert d.next_server == owner.sid  # fallback keeps it reachable
