"""The registry-driven experiment printers produce sane reports."""

import pytest

from repro.experiments import runner
from repro.experiments.campaign import EXPERIMENT_NAMES, get_experiment
from repro.experiments.common import Scale

MICRO = Scale(
    name="tiny", ns_levels=6, nc_nodes=300, n_servers=8,
    warmup=1.5, phase=1.5, n_phases=1, drain=1.5, cache_slots=6,
    digest_probe_limit=1, long_run=12.0, long_bucket=3,
)


class TestRegistry:
    def test_every_experiment_registered(self):
        assert set(runner.EXPERIMENTS) == set(EXPERIMENT_NAMES)

    def test_registry_entries_are_complete(self):
        for name in EXPERIMENT_NAMES:
            exp = get_experiment(name)
            assert exp.name == name
            assert exp.title
            assert callable(exp.specs)
            assert callable(exp.assemble)
            assert callable(exp.render)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            get_experiment("bogus")


class TestPrinters:
    def test_table1_printer(self, capsys):
        runner.EXPERIMENTS["table1"](MICRO)
        out = capsys.readouterr().out
        assert "owned" in out and "cached" in out

    def test_fig6_printer(self, capsys):
        runner.EXPERIMENTS["fig6"](MICRO)
        out = capsys.readouterr().out
        assert "util0.4" in out
        assert "smoothed-max" in out

    def test_fig9_printer(self, capsys):
        runner.EXPERIMENTS["fig9"](MICRO)
        out = capsys.readouterr().out
        assert "servers" in out and "latency" in out

    def test_heterogeneity_printer(self, capsys):
        runner.EXPERIMENTS["heterogeneity"](MICRO)
        out = capsys.readouterr().out
        assert "heterogeneous-BCR" in out

    def test_resilience_printer(self, capsys):
        runner.EXPERIMENTS["resilience"](MICRO)
        out = capsys.readouterr().out
        assert "completion_during" in out

    def test_static_printer(self, capsys):
        runner.EXPERIMENTS["static"](MICRO)
        out = capsys.readouterr().out
        assert "adaptive" in out


class TestMain:
    def test_main_runs_a_subset(self, capsys, monkeypatch):
        # force the micro scale through the registry path
        monkeypatch.setattr(runner, "get_scale", lambda: MICRO)
        runner.main(["table1"])
        out = capsys.readouterr().out
        assert "=== table1 ===" in out
        assert "scale=tiny" in out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            runner.main(["bogus"])
