"""Unit tests for the peer pipeline components and the facade seams."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.server.ingress import IngressQueue
from repro.server.replica_store import ReplicaStore
from repro.server.routing_core import RoutingCore
from repro.server.softstate import SoftStateAbsorber


class TestIngressQueue:
    def test_fifo_order(self):
        q = IngressQueue(capacity=4)
        for i in range(3):
            assert q.offer(i)
        assert [q.pop(), q.pop(), q.pop()] == [0, 1, 2]

    def test_drop_when_full(self):
        q = IngressQueue(capacity=2)
        assert q.offer("a")
        assert q.offer("b")
        assert not q.offer("c")
        assert not q.offer("d")
        assert q.n_drops == 2
        assert len(q) == 2

    def test_zero_capacity_drops_everything(self):
        q = IngressQueue(capacity=0)
        assert not q.offer("a")
        assert q.n_drops == 1
        assert len(q) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            IngressQueue(capacity=-1)

    def test_clear_does_not_count_drops(self):
        q = IngressQueue(capacity=4)
        q.offer("a")
        q.offer("b")
        q.clear()
        assert len(q) == 0
        assert q.n_drops == 0

    def test_bool_and_repr(self):
        q = IngressQueue(capacity=2)
        assert not q
        q.offer("a")
        assert q
        assert "depth=1/2" in repr(q)

    def test_pop_reopens_capacity(self):
        q = IngressQueue(capacity=1)
        q.offer("a")
        assert not q.offer("b")
        q.pop()
        assert q.offer("c")
        assert q.n_drops == 1


def make(n_servers=4, levels=4, **over):
    ns = balanced_tree(levels=levels)
    defaults = dict(n_servers=n_servers, seed=3, bootstrap_known_peers=0)
    defaults.update(over)
    cfg = SystemConfig.replicated(**defaults)
    return ns, build_system(ns, cfg)


class TestPeerFacade:
    """The facade exposes component state under the historical names."""

    def test_component_wiring(self):
        ns, system = make()
        p = system.peers[0]
        assert isinstance(p.ingress, IngressQueue)
        assert isinstance(p.absorber, SoftStateAbsorber)
        assert isinstance(p.router, RoutingCore)
        assert isinstance(p.store, ReplicaStore)

    def test_queue_property_is_live_ingress_deque(self):
        ns, system = make()
        p = system.peers[0]
        assert p.queue is p.ingress.queue
        dest = next(iter(system.peers[1].owned))
        p.inject(dest, qid=1)  # goes straight into service
        p.inject(dest, qid=2)  # queued
        assert len(p.queue) == 1
        p.queue.clear()  # the failures module clears through this name
        assert len(p.ingress.queue) == 0

    def test_drop_accounting_delegates(self):
        ns, system = make(queue_size=1)
        p = system.peers[0]
        dest = next(iter(system.peers[1].owned))
        for i in range(4):
            p.inject(dest, qid=i)
        assert p.n_queue_drops == p.ingress.n_drops == 2

    def test_in_service_setter_reaches_ingress(self):
        ns, system = make()
        p = system.peers[0]
        p.in_service = True  # failures.py assigns through the facade
        assert p.ingress.in_service
        p.in_service = False
        assert not p.ingress.in_service

    def test_store_state_visible_through_facade(self):
        ns, system = make()
        p = system.peers[0]
        assert p.replicas is p.store.replicas
        assert p.hosted_list is p.store.hosted_list
        assert p.adverts_recent is p.store.adverts_recent
        assert p.known_loads is p.absorber.known_loads
        assert set(p.hosted_list) == set(p.owned)
