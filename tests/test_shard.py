"""Sharded windowed execution must be bit-identical to the serial engine.

The conservative-window contract (`repro.sim.shard`): with constant
``net_delay`` lookahead, N shard engines advancing in delay-wide
lock-stepped windows and exchanging cross-shard messages at barriers
produce byte-for-byte the fingerprints of one serial engine -- for
every shard count, on both backends.  These tests lock that contract,
the windowed-execution edge cases (boundary events, timer cancels
across windows, jitter rejection), and the shard/backend resolution
knobs.
"""

import json
import warnings

import pytest

from repro.analysis.summary import run_summary
from repro.cluster.builder import build_shard_system, build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.net.transport import ShardTransport, shard_of_sid, shard_sids
from repro.sim.engine import Engine, ShardError
from repro.sim.shard import (
    MergedRun,
    WindowedCoordinator,
    resolve_backend,
    resolve_shards,
    run_fingerprint,
    run_sharded_workload,
    window_plan,
)
from repro.sim.timerwheel import TimerWheel
from repro.workload.arrivals import WorkloadDriver, iter_arrivals
from repro.workload.streams import cuzipf_stream, uzipf_stream


def serial_run(ns, cfg, spec, until):
    system = build_system(ns, cfg)
    WorkloadDriver(system, spec).start()
    system.run_until(until)
    return system


def fig3_style():
    """Composite cuzipf stream with a reshuffle, 16 servers."""
    ns = balanced_tree(levels=7)
    cfg = SystemConfig.replicated(n_servers=16, seed=7, cache_slots=8)
    spec = cuzipf_stream(rate=400.0, alpha=1.0, warmup=1.0, phase=1.0,
                         n_phases=2, seed=7)
    return ns, cfg, spec, spec.duration + 1.0


def fig9_style():
    """Scalability-shaped point: 32 servers, pure-zipf stream."""
    ns = balanced_tree(levels=8)
    cfg = SystemConfig.replicated(n_servers=32, seed=11, cache_slots=12,
                                  rmap=3, rfact=2.0)
    spec = uzipf_stream(rate=600.0, duration=3.0, alpha=1.0, seed=11)
    return ns, cfg, spec, spec.duration + 1.0


# ----------------------------------------------------------------------
# pre-generated arrivals == lazy driver
# ----------------------------------------------------------------------


class TestIterArrivals:
    def test_matches_driver_exactly(self):
        ns, cfg, spec, until = fig3_style()
        system = build_system(ns, cfg)
        tap = []
        system.on_inject = lambda now, src, dest: tap.append(
            (now, src, dest)
        )
        WorkloadDriver(system, spec).start()
        system.run_until(until)
        gen = list(iter_arrivals(spec, len(ns), cfg.n_servers))
        assert len(gen) > 500  # non-trivial stream
        assert tap == gen  # bit-identical times, sources, destinations

    def test_respects_start_offset(self):
        ns, cfg, spec, _ = fig3_style()
        base = list(iter_arrivals(spec, len(ns), cfg.n_servers))
        moved = list(iter_arrivals(spec, len(ns), cfg.n_servers, t0=5.0))
        assert len(base) == len(moved)
        assert moved[0][0] == pytest.approx(base[0][0] + 5.0)
        assert [a[1:] for a in base] == [a[1:] for a in moved]


# ----------------------------------------------------------------------
# engine windows
# ----------------------------------------------------------------------


class TestRunWindow:
    def test_boundary_event_runs_in_the_window_it_opens(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, "boundary")
        eng.schedule(0.5, hits.append, "inside")
        eng.run_window(1.0)
        assert hits == ["inside"]  # t == end is excluded...
        assert eng.now == 1.0
        eng.run_window(2.0)
        assert hits == ["inside", "boundary"]  # ...and opens the next

    def test_inclusive_final_window_matches_run_until(self):
        eng = Engine()
        hits = []
        eng.schedule(2.0, hits.append, "at-end")
        eng.run_window(2.0, inclusive=True)
        assert hits == ["at-end"]
        assert eng.now == 2.0

    def test_advances_clock_through_empty_windows(self):
        eng = Engine()
        eng.run_window(3.0)
        assert eng.now == 3.0

    def test_rejects_windows_ending_in_the_past(self):
        eng = Engine()
        eng.run_window(2.0)
        with pytest.raises(Exception):
            eng.run_window(1.0)


class TestWindowPlan:
    def test_covers_horizon_and_ends_inclusive(self):
        plan = list(window_plan(0.025, 1.0))
        assert plan[-1] == (1.0, True)
        assert all(not inc for _, inc in plan[:-1])
        ends = [e for e, _ in plan]
        assert ends == sorted(ends)
        # window width never exceeds the lookahead
        prev = 0.0
        for e in ends:
            assert e - prev <= 0.025 + 1e-12
            prev = e

    def test_short_horizon_is_one_inclusive_window(self):
        assert list(window_plan(0.5, 0.2)) == [(0.2, True)]

    def test_send_at_window_start_never_lands_in_executed_window(self):
        # the float-monotonicity property the accumulating plan relies
        # on: for consecutive ends a < b, a + d >= b as floats
        d = 0.1  # not exactly representable: the adversarial case
        ends = [e for e, _ in window_plan(d, 10.0)]
        prev = 0.0
        for e in ends:
            assert prev + d >= e
            prev = e


# ----------------------------------------------------------------------
# shard transport
# ----------------------------------------------------------------------


class TestShardOfSid:
    def test_blocks_are_contiguous_and_balanced(self):
        for n_servers, n_shards in ((16, 4), (10, 3), (7, 7), (8, 1)):
            owners = [
                shard_of_sid(s, n_servers, n_shards)
                for s in range(n_servers)
            ]
            assert owners == sorted(owners)  # contiguous, monotone
            assert set(owners) == set(range(n_shards))  # none empty
            sizes = [owners.count(k) for k in range(n_shards)]
            assert max(sizes) - min(sizes) <= 1  # balanced
            for k in range(n_shards):
                assert shard_sids(k, n_servers, n_shards) == [
                    s for s in range(n_servers) if owners[s] == k
                ]


class TestShardTransport:
    def _pair(self, shard_id=0, n_shards=2, n_servers=4):
        eng = Engine()
        tr = ShardTransport(
            eng, 0.025, shard_id=shard_id, n_shards=n_shards,
            n_servers=n_servers,
        )
        got = []
        for sid in shard_sids(shard_id, n_servers, n_shards):
            tr.register(sid, lambda msg, sid=sid: got.append((sid, msg)))
        return eng, tr, got

    def test_local_sends_deliver_on_the_ring(self):
        eng, tr, got = self._pair()
        tr.send(0, "a")
        tr.send(1, "b")
        eng.run()
        assert got == [(0, "a"), (1, "b")]
        assert tr.collect_egress() == {}

    def test_cross_shard_sends_buffer_as_egress(self):
        eng, tr, got = self._pair()
        tr.send(3, "remote")
        eng.run()
        assert got == []
        egress = tr.collect_egress()
        assert list(egress) == [1]
        ((at, src_shard, seq, dest, msg),) = egress[1]
        assert (src_shard, dest, msg) == (0, 3, "remote")
        assert at == pytest.approx(0.025)
        assert tr.collect_egress() == {}  # handed over exactly once

    def test_ingest_merges_in_canonical_order(self):
        eng, tr, got = self._pair()
        eng.run_window(0.025)  # now == 0.025
        tr.send(0, "local")  # delivers at 0.050
        # two remote batches with deliveries straddling the local one
        b_early = [(0.03, 1, 1, 1, "early")]
        b_late = [(0.05, 1, 2, 0, "tie-late"), (0.07, 1, 3, 1, "late")]
        tr.ingest([b_early, b_late])
        eng.run()
        # at == 0.05 tie breaks by (src_shard, seq): local shard 0 wins
        assert got == [
            (1, "early"), (0, "local"), (0, "tie-late"), (1, "late")
        ]

    def test_ingest_rejects_messages_for_executed_windows(self):
        eng, tr, _ = self._pair()
        eng.run_window(1.0)
        with pytest.raises(ShardError):
            tr.ingest([[(0.5, 1, 1, 0, "too-old")]])

    def test_jitter_and_zero_delay_are_rejected(self):
        with pytest.raises(ShardError):
            ShardTransport(Engine(), 0.025, shard_id=0, n_shards=2,
                           n_servers=4, net_jitter=0.01)
        with pytest.raises(ShardError):
            ShardTransport(Engine(), 0.0, shard_id=0, n_shards=2,
                           n_servers=4)

    def test_remote_failure_injection_is_rejected(self):
        _, tr, _ = self._pair()
        with pytest.raises(ShardError):
            tr.fail_server(3)  # lives on shard 1


# ----------------------------------------------------------------------
# the determinism contract
# ----------------------------------------------------------------------


class TestShardedDeterminism:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_fig3_style_bit_identical(self, n_shards):
        ns, cfg, spec, until = fig3_style()
        ref = run_fingerprint(serial_run(ns, cfg, spec, until))
        coord = WindowedCoordinator(ns, cfg, spec, n_shards,
                                    backend="inline")
        run = coord.run(until)
        got = run_fingerprint(run)
        assert json.dumps(got, sort_keys=True) == json.dumps(
            ref, sort_keys=True
        )

    @pytest.mark.parametrize("n_shards", [2, 8])
    def test_fig9_style_bit_identical(self, n_shards):
        ns, cfg, spec, until = fig9_style()
        system = serial_run(ns, cfg, spec, until)
        run = WindowedCoordinator(ns, cfg, spec, n_shards,
                                  backend="inline").run(until)
        assert json.dumps(run_fingerprint(run), sort_keys=True) == \
            json.dumps(run_fingerprint(system), sort_keys=True)
        # the analysis layer sees identical numbers through either type
        assert json.dumps(run_summary(run), sort_keys=True) == \
            json.dumps(run_summary(system), sort_keys=True)

    def test_process_backend_bit_identical(self):
        ns, cfg, spec, until = fig3_style()
        ref = run_fingerprint(serial_run(ns, cfg, spec, until))
        run = WindowedCoordinator(ns, cfg, spec, 2,
                                  backend="process").run(until)
        assert json.dumps(run_fingerprint(run), sort_keys=True) == \
            json.dumps(ref, sort_keys=True)

    def test_merged_run_shape(self):
        ns, cfg, spec, until = fig3_style()
        run = WindowedCoordinator(ns, cfg, spec, 4,
                                  backend="inline").run(until)
        assert isinstance(run, MergedRun)
        assert run.n_shards == 4
        assert run.n_windows > 0
        assert run.engine.now == until
        assert len(run.processed_by_sid) == cfg.n_servers
        assert run.total_replicas() == sum(
            len(r) for r in run.replicas_by_sid
        )


class TestPackedDataPlane:
    """The zero-copy data plane: packed codec, shm arenas, coalescing.

    Same bit-identity contract as above, with every cross-shard
    barrier round-tripped through :mod:`repro.sim.shardcodec` frames
    (inline ``codec=True``) or through real worker pipes + shared
    arenas (process backend, codec always on).
    """

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_codec_inline_bit_identical(self, n_shards):
        ns, cfg, spec, until = fig3_style()
        ref = run_fingerprint(serial_run(ns, cfg, spec, until))
        run = WindowedCoordinator(ns, cfg, spec, n_shards,
                                  backend="inline", codec=True).run(until)
        assert json.dumps(run_fingerprint(run), sort_keys=True) == \
            json.dumps(ref, sort_keys=True)

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_fig9_style_process_bit_identical(self, n_shards):
        ns, cfg, spec, until = fig9_style()
        system = serial_run(ns, cfg, spec, until)
        run = WindowedCoordinator(ns, cfg, spec, n_shards,
                                  backend="process").run(until)
        assert json.dumps(run_fingerprint(run), sort_keys=True) == \
            json.dumps(run_fingerprint(system), sort_keys=True)
        assert json.dumps(run_summary(run), sort_keys=True) == \
            json.dumps(run_summary(system), sort_keys=True)

    def test_coalescing_accounts_for_every_planned_window(self):
        ns, cfg, spec, until = fig3_style()
        coord = WindowedCoordinator(ns, cfg, spec, 2, backend="inline")
        run = coord.run(until)
        planned = len(list(window_plan(cfg.net_delay, until)))
        dp = run.data_plane
        # every planned window was either stepped at a barrier or
        # provably-empty and skipped; the quiet warmup guarantees
        # some of each on this workload
        assert dp["n_barriers"] + dp["n_coalesced"] == planned
        assert dp["n_coalesced"] > 0
        assert run.n_windows == dp["n_barriers"]

    def test_process_data_plane_counters(self):
        ns, cfg, spec, until = fig3_style()
        coord = WindowedCoordinator(ns, cfg, spec, 2, backend="process")
        run = coord.run(until)
        dp = run.data_plane
        assert dp["backend"] == "process"
        assert dp["codec"] is True
        assert dp["bytes_exchanged"] > 0
        assert dp["barrier_wait_s"] > 0.0
        assert dp["encode_s"] >= 0.0 and dp["decode_s"] >= 0.0

    def test_inline_without_codec_exchanges_no_bytes(self):
        ns, cfg, spec, until = fig3_style()
        run = WindowedCoordinator(ns, cfg, spec, 2,
                                  backend="inline").run(until)
        dp = run.data_plane
        assert dp["codec"] is False
        assert dp["bytes_exchanged"] == 0

    def test_worker_crash_raises_shard_error_naming_shard(self):
        from repro.sim.shard import _ProcessStepper

        ns, cfg, spec, _ = fig3_style()
        coord = WindowedCoordinator(ns, cfg, spec, 2, backend="process")
        stepper = _ProcessStepper(coord)
        try:
            victim = stepper.workers[1].proc
            victim.kill()
            victim.join(timeout=10)
            with pytest.raises(ShardError, match=r"shard 1 worker"):
                stepper.step_all(cfg.net_delay, False, [[], []])
            # the crash tore down the surviving workers too
            assert stepper.workers == []
        finally:
            stepper.close()


class TestShardSystemConstruction:
    def test_shard_union_equals_serial_system(self):
        ns, cfg, _, _ = fig3_style()
        serial = build_system(ns, cfg)
        n_shards = 4
        seen = {}
        for shard_id in range(n_shards):
            shard = build_shard_system(ns, cfg, shard_id, n_shards)
            assert [p.sid for p in shard.local_peers] == shard.local_sids
            for p in shard.local_peers:
                seen[p.sid] = p
        assert sorted(seen) == list(range(cfg.n_servers))
        for sid, p in seen.items():
            ref = serial.peers[sid]
            assert sorted(p.hosted_list) == sorted(ref.hosted_list)
            assert p.service_mean == ref.service_mean  # het draw replayed
            assert p.known_loads == ref.known_loads  # bootstrap replayed

    def test_oracle_maps_rejected(self):
        ns, cfg, _, _ = fig3_style()
        cfg.oracle_maps = True
        with pytest.raises(ShardError):
            build_shard_system(ns, cfg, 0, 2)


# ----------------------------------------------------------------------
# fallback + resolution knobs
# ----------------------------------------------------------------------


class TestFallback:
    def test_jitter_warns_and_falls_back_to_serial(self):
        ns, cfg, spec, until = fig3_style()
        cfg.net_jitter = 0.005
        with pytest.warns(RuntimeWarning, match="serial"):
            run = run_sharded_workload(ns, cfg, spec, until, shards=2)
        assert not isinstance(run, MergedRun)  # a real serial System
        assert run.engine.now == until

    def test_shards_1_takes_the_plain_serial_path(self):
        ns, cfg, spec, until = fig3_style()
        run = run_sharded_workload(ns, cfg, spec, until, shards=1)
        assert not isinstance(run, MergedRun)
        ref = run_fingerprint(serial_run(ns, cfg, spec, until))
        assert json.dumps(run_fingerprint(run), sort_keys=True) == \
            json.dumps(ref, sort_keys=True)

    def test_env_selects_shards(self, monkeypatch):
        ns, cfg, spec, until = fig3_style()
        monkeypatch.setenv("REPRO_SHARDS", "2")
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "inline")
        run = run_sharded_workload(ns, cfg, spec, until)
        assert isinstance(run, MergedRun)
        assert run.n_shards == 2


class TestResolution:
    def test_resolve_shards_env_forms(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards() == 1
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards() == 4
        assert resolve_shards(n_servers=3) == 3  # clamped
        monkeypatch.setenv("REPRO_SHARDS", "auto")
        assert resolve_shards() >= 1
        monkeypatch.setenv("REPRO_SHARDS", "bogus")
        with pytest.raises(ValueError):
            resolve_shards()
        with pytest.raises(ValueError):
            resolve_shards(0)

    def test_resolve_backend_budget(self, monkeypatch):
        from repro.experiments import parallel

        monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        assert resolve_backend(n_shards=4) == "process"
        assert resolve_backend(n_shards=16) == "inline"  # over budget
        assert resolve_backend(n_shards=1) == "inline"
        # campaign workers claim the CPUs first (documented precedence)
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_backend(n_shards=4) == "inline"
        # explicit process wins but warns about oversubscription
        with pytest.warns(RuntimeWarning, match="oversubscribes"):
            assert resolve_backend("process", n_shards=4) == "process"

    def test_resolve_backend_explicit_inline_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("inline", n_shards=64) == "inline"

    def test_shard_process_budget(self, monkeypatch):
        from repro.experiments.parallel import shard_process_budget

        monkeypatch.setattr("repro.experiments.parallel.os.cpu_count",
                            lambda: 8)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert shard_process_budget() == 8
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert shard_process_budget() == 4
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert shard_process_budget() == 1
        assert shard_process_budget(workers=4) == 2


# ----------------------------------------------------------------------
# windowed-execution edge cases
# ----------------------------------------------------------------------


class TestTimerAcrossWindows:
    def test_cancel_crossing_a_window_barrier_sticks(self):
        # a timer armed in window 1 to fire in window 3, cancelled at a
        # time in window 2: the windowed loop must honour the cancel
        # even though the barrier re-sorted the heap's surroundings
        eng = Engine()
        wheel = TimerWheel(eng, tick=0.01)
        fired = []
        handle = wheel.schedule_after(0.055, fired.append, "timer")
        eng.schedule(0.030, handle.cancel)
        for end in (0.025, 0.050, 0.075):
            eng.run_window(end)
        eng.run_window(0.1, inclusive=True)
        assert fired == []
        assert wheel.n_cancelled == 1

    def test_uncancelled_timer_fires_in_its_window(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=0.01)
        fired = []
        wheel.schedule_after(0.055, lambda: fired.append(eng.now))
        for end in (0.025, 0.050, 0.075):
            eng.run_window(end)
        assert len(fired) == 1
        assert 0.050 <= fired[0] < 0.075


class TestProfileIntegration:
    def test_sharded_profile_report_labels_shards(self):
        from repro.sim import profile

        ns, cfg, spec, until = fig3_style()
        profile.enable()
        profile.reset()
        try:
            run = run_sharded_workload(ns, cfg, spec, until, shards=2,
                                       backend="auto")
            assert isinstance(run, MergedRun)  # auto went inline
            report = profile.render_report()
        finally:
            profile.disable()
            profile.reset()
        assert "per-engine breakdown:" in report
        assert "shard0" in report and "shard1" in report
        assert "routing decisions by candidate class:" in report
        assert "sharded data plane (inline):" in report
        assert "coalesced windows" in report
        assert "barrier-wait" in report


class TestShardCheckCli:
    def test_shard_check_passes_on_identical_runs(self, capsys):
        from repro.sim.shard import main

        rc = main(["--shards", "1,2", "--levels", "6", "--servers", "8",
                   "--duration", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK: bit-identical to serial" in out
        assert "FAIL" not in out
