"""The packed cross-shard codec (repro.sim.shardcodec).

Property-based round-trips over every message class registered in
``PEER_DISPATCH`` (the exact set the sharded data plane may ever put on
a worker pipe), strict rejection of malformed frames, and the
step-frame / packed-log / packed-arrival layers the process backend is
built on.
"""

import math
import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.namespace.meta import NodeMeta
from repro.net.message import (
    Advertisement,
    AdvertMessage,
    DataReply,
    DataRequest,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ReplicaPayload,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
)
from repro.sim.shardcodec import (
    MAGIC,
    ArrivalBatch,
    PackedLog,
    ShardCodecError,
    decode_batch,
    decode_stats_log,
    decode_step_reply,
    decode_step_request,
    encode_batch,
    encode_step_reply,
    encode_step_request,
    require_encodable,
    supported_types,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

i32 = st.integers(-(2 ** 31), 2 ** 31 - 1)
u16 = st.integers(0, 2 ** 16 - 1)
u64 = st.integers(0, 2 ** 64 - 1)
i64 = st.integers(-(2 ** 63), 2 ** 63 - 1)
f64 = st.floats(allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
ids = st.integers(0, 10_000)
int_lists = st.lists(i32, max_size=6)
pair_lists = st.lists(st.tuples(i32, i32), max_size=6)
short_text = st.text(max_size=12)

digests = st.none() | st.tuples(
    i64, st.lists(u64, max_size=6).map(tuple)
)


@st.composite
def metas(draw):
    m = NodeMeta()
    m.version = draw(i64)
    m.attributes = draw(
        st.dictionaries(short_text, short_text, max_size=4)
    )
    m.keywords = draw(st.sets(short_text, max_size=4))
    return m


@st.composite
def queries(draw):
    m = QueryMessage(
        qid=draw(i64), dest=draw(ids), origin=draw(ids),
        created_at=draw(times),
    )
    m.hops = draw(st.integers(0, 1000))
    m.sender = draw(ids)
    m.sender_load = draw(f64)
    m.sender_digest = draw(digests)
    m.dest_map = draw(int_lists)
    m.path = draw(pair_lists)
    m.adverts = [
        Advertisement(n, s)
        for n, s in draw(st.lists(st.tuples(ids, ids), max_size=4))
    ]
    m.stale_hops = draw(st.integers(0, 1000))
    m.via = draw(i32)
    return m


@st.composite
def responses(draw):
    m = ResponseMessage(draw(queries()), resolver=draw(ids),
                        dest_map=draw(int_lists),
                        meta_version=draw(i64))
    m.sender_load = draw(f64)
    m.sender_digest = draw(digests)
    return m


adverts = st.builds(AdvertMessage, node=ids, servers=int_lists)
probes = st.builds(ProbeMessage, session=i64, src=ids, src_load=f64)
probe_replies = st.builds(
    ProbeReplyMessage, session=i64, src=ids, load=f64, willing=st.booleans()
)


@st.composite
def payloads(draw):
    context = {
        k: draw(int_lists)
        for k in draw(st.lists(ids, max_size=3, unique=True))
    }
    return ReplicaPayload(
        node=draw(ids), meta_version=draw(i64),
        node_map=draw(int_lists), context=context,
        meta=draw(st.none() | metas()),
    )


transfers = st.builds(
    TransferMessage, session=i64, src=ids,
    payloads=st.lists(payloads(), max_size=3), load_delta=f64,
)
acks = st.builds(TransferAckMessage, session=i64, src=ids,
                 installed=int_lists)
data_requests = st.builds(DataRequest, rid=i64, node=ids, origin=ids,
                          want_meta=st.booleans())

data_payloads = (
    st.none() | short_text | st.binary(max_size=12) | st.booleans()
    | i64 | f64
)


@st.composite
def data_replies(draw):
    m = DataReply(rid=draw(i64), node=draw(ids), responder=draw(ids))
    m.data = draw(data_payloads)
    m.meta = draw(st.none() | metas())
    m.redirect_map = draw(int_lists)
    return m


messages = st.one_of(
    queries(), responses(), adverts, probes, probe_replies, transfers,
    acks, data_requests, data_replies(),
)

entries = st.lists(
    st.tuples(times, u16, u64, i32, messages), max_size=6
)


# ---------------------------------------------------------------------------
# structural equality (slot-by-slot, expanding nested objects)
# ---------------------------------------------------------------------------

def _state(obj):
    if isinstance(obj, Advertisement):
        return ("ad", obj.node, obj.server)
    if isinstance(obj, ReplicaPayload):
        return ("payload", obj.node, obj.meta_version, obj.node_map,
                obj.context, _state(obj.meta))
    if isinstance(obj, NodeMeta):
        return ("meta", obj.version, obj.attributes, obj.keywords)
    if obj is None or isinstance(obj, (int, float, str, bytes, bool,
                                       tuple, list, dict)):
        return obj
    slots = []
    for klass in type(obj).__mro__:
        slots.extend(klass.__dict__.get("__slots__", ()))
    return (type(obj).__name__,) + tuple(
        (name, _nested(getattr(obj, name))) for name in slots
    )


def _nested(v):
    if isinstance(v, list):
        return [_state(x) for x in v]
    return _state(v)


def _entry_state(e):
    at, src, seq, dest, msg = e
    return (at, src, seq, dest, _state(msg))


# ---------------------------------------------------------------------------
# round-trips
# ---------------------------------------------------------------------------

class TestRoundTrip:
    @given(entries)
    @settings(max_examples=200)
    def test_batch_round_trip(self, es):
        frame = encode_batch(es)
        got = decode_batch(frame)
        assert [_entry_state(e) for e in got] == \
            [_entry_state(e) for e in es]

    @given(entries)
    @settings(max_examples=50)
    def test_decode_accepts_memoryview(self, es):
        frame = encode_batch(es)
        got = decode_batch(memoryview(frame))
        assert [_entry_state(e) for e in got] == \
            [_entry_state(e) for e in es]

    def test_every_registered_class_is_covered(self):
        from repro.server.peer import PEER_DISPATCH

        registered = set(PEER_DISPATCH.types())
        assert registered <= set(supported_types())
        require_encodable(PEER_DISPATCH.types())  # must not raise

    def test_require_encodable_rejects_unknown_class(self):
        class Rogue:
            pass

        with pytest.raises(ShardCodecError, match="Rogue"):
            require_encodable([QueryMessage, Rogue])

    def test_response_path_no_longer_aliases_query(self):
        q = QueryMessage(qid=1, dest=2, origin=3, created_at=0.5)
        q.path = [(2, 3)]
        r = ResponseMessage(q, resolver=4, dest_map=[4])
        assert r.path is q.path  # constructor aliases...
        (entry,) = decode_batch(encode_batch([(1.0, 0, 1, 0, r)]))
        decoded = entry[4]
        assert decoded.path == r.path  # ...the wire copies


class TestRejection:
    def _one_frame(self):
        m = ProbeMessage(session=7, src=1, src_load=0.25)
        return encode_batch([(1.5, 0, 3, 2, m)])

    def test_empty_batch_round_trips(self):
        assert decode_batch(encode_batch([])) == []

    def test_bad_magic(self):
        frame = bytearray(self._one_frame())
        frame[:4] = b"XXXX"
        with pytest.raises(ShardCodecError, match="magic"):
            decode_batch(bytes(frame))

    def test_truncated_header(self):
        with pytest.raises(ShardCodecError):
            decode_batch(MAGIC + b"\x01")

    def test_truncated_tail(self):
        frame = self._one_frame()
        with pytest.raises(ShardCodecError):
            decode_batch(frame[:-1])

    def test_trailing_garbage(self):
        with pytest.raises(ShardCodecError, match="trailing"):
            decode_batch(self._one_frame() + b"\x00")

    def test_unknown_type_id(self):
        frame = bytearray(self._one_frame())
        # type id lives after magic+count+deliver_at+src_shard+seq+dest
        tid_at = 4 + 4 + 8 + 2 + 8 + 4
        assert frame[tid_at] != 0xEE
        frame[tid_at] = 0xEE
        with pytest.raises(ShardCodecError, match="type id"):
            decode_batch(bytes(frame))

    def test_body_length_mismatch(self):
        frame = bytearray(self._one_frame())
        blen_at = 4 + 4 + 8 + 2 + 8 + 4 + 1  # body_len field
        (blen,) = struct.unpack_from("<I", frame, blen_at)
        struct.pack_into("<I", frame, blen_at, blen + 1)
        with pytest.raises(ShardCodecError):
            decode_batch(bytes(frame))

    def test_unencodable_message_class(self):
        with pytest.raises(ShardCodecError, match="object"):
            encode_batch([(0.0, 0, 0, 0, object())])

    def test_int32_overflow_fails_loudly(self):
        m = AdvertMessage(node=0, servers=[2 ** 40])
        with pytest.raises(ShardCodecError, match="overflow"):
            encode_batch([(0.0, 0, 0, 0, m)])

    def test_garbage_bytes(self):
        with pytest.raises(ShardCodecError):
            decode_batch(b"\xde\xad\xbe\xef" * 8)


# ---------------------------------------------------------------------------
# step frames
# ---------------------------------------------------------------------------

class TestStepFrames:
    @given(
        end=times, inclusive=st.booleans(),
        frames=st.lists(st.binary(max_size=32), max_size=4),
    )
    def test_request_round_trip(self, end, inclusive, frames):
        payload = encode_step_request(end, inclusive, frames)
        got_end, got_incl, got_frames = decode_step_request(
            memoryview(payload)[1:]
        )
        assert got_end == end
        assert got_incl == inclusive
        assert [bytes(f) for f in got_frames] == frames

    @given(
        nt=times | st.just(math.inf),
        dest_frames=st.lists(
            st.tuples(i32, st.binary(max_size=32)), max_size=4
        ),
    )
    def test_reply_round_trip(self, nt, dest_frames):
        payload = encode_step_reply(nt, dest_frames)
        got_nt, got = decode_step_reply(memoryview(payload)[1:])
        assert got_nt == nt
        assert [(d, bytes(f)) for d, f in got] == dest_frames

    def test_truncated_request(self):
        payload = encode_step_request(1.0, False, [b"abcd"])
        with pytest.raises(ShardCodecError):
            decode_step_request(memoryview(payload)[1:-1])

    def test_truncated_reply(self):
        payload = encode_step_reply(1.0, [(1, b"abcd")])
        with pytest.raises(ShardCodecError):
            decode_step_reply(memoryview(payload)[1:-1])


# ---------------------------------------------------------------------------
# packed stats logs
# ---------------------------------------------------------------------------

class TestPackedLog:
    def _recorded(self):
        from repro.sim.engine import Engine
        from repro.sim.shard import ShardRecorder

        eng = Engine()
        rec = ShardRecorder(eng)
        rec.record_injected(0.5)
        rec.record_drop(0.6, "queue")
        rec.record_completion(0.7, 0.2, 3, 1)
        eng.now = 0.8
        rec.record_forward("cache")
        rec.record_stale_hop(0.9)
        rec.record_replica_created(1.0, 2)
        rec.record_replica_evicted(1.1, 3)
        rec.sample_load(1.2, 0.75)
        rec.record_client_lookup(1.3)
        rec.record_client_timeout(1.4)
        rec.record_client_retry(1.5)
        rec.record_drop(1.6, "queue")  # interned: same table entry
        return rec

    def test_decode_matches_recorded_stream(self):
        from repro.sim import shardcodec as sc

        log = self._recorded().packed()
        assert len(log) == 12
        assert decode_stats_log(log) == [
            (0.5, sc.LOG_INJECTED),
            (0.6, sc.LOG_DROP, "queue"),
            (0.7, sc.LOG_COMPLETION, 0.2, 3, 1),
            (0.8, sc.LOG_FORWARD, "cache"),
            (0.9, sc.LOG_STALE_HOP),
            (1.0, sc.LOG_REPLICA_CREATED, 2),
            (1.1, sc.LOG_REPLICA_EVICTED, 3),
            (1.2, sc.LOG_LOAD, 0.75),
            (1.3, sc.LOG_CLIENT_LOOKUP),
            (1.4, sc.LOG_CLIENT_TIMEOUT),
            (1.5, sc.LOG_CLIENT_RETRY),
            (1.6, sc.LOG_DROP, "queue"),
        ]
        assert log.strings == ("queue", "cache")

    def test_pickle_round_trip(self):
        log = self._recorded().packed()
        clone = pickle.loads(pickle.dumps(log))
        assert decode_stats_log(clone) == decode_stats_log(log)

    def test_corrupt_log_rejected(self):
        log = self._recorded().packed()
        with pytest.raises(ShardCodecError):
            decode_stats_log(PackedLog(log.data[:-1], log.strings, log.n))
        with pytest.raises(ShardCodecError):
            decode_stats_log(
                PackedLog(log.data + b"\x00" * 9, log.strings, log.n)
            )


# ---------------------------------------------------------------------------
# packed arrivals
# ---------------------------------------------------------------------------

class TestArrivalBatch:
    @given(st.lists(st.tuples(times, ids, ids, i64), max_size=8))
    def test_indexing_and_iteration(self, rows):
        batch = ArrivalBatch(rows)
        assert len(batch) == len(rows)
        assert list(batch) == rows
        for i, row in enumerate(rows):
            assert batch[i] == row

    def test_pickle_is_flat_and_faithful(self):
        rows = [(0.25 * i, i, i + 1, 100 + i) for i in range(50)]
        batch = ArrivalBatch(rows)
        clone = pickle.loads(pickle.dumps(batch))
        assert list(clone) == rows
        # the pickle carries four flat column byte-strings, not one
        # tuple + four boxed values per arrival
        _, args = batch.__reduce__()
        assert all(isinstance(a, bytes) for a in args)
        assert sum(len(a) for a in args) == 24 * len(rows)
