"""Tests for paper Table 1: server-node relationships and their state."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.server.state import (
    STATE_MATRIX,
    Relationship,
    audit_peer,
    relationship_of,
    state_kinds,
)


@pytest.fixture
def system():
    ns = balanced_tree(levels=5)
    cfg = SystemConfig.replicated(n_servers=8, seed=4, bootstrap_known_peers=0)
    return ns, build_system(ns, cfg)


class TestMatrix:
    def test_matrix_matches_paper(self):
        assert STATE_MATRIX[Relationship.OWNED] == {
            "name", "map", "data", "meta", "context"
        }
        assert STATE_MATRIX[Relationship.REPLICATED] == {
            "name", "map", "meta", "context"
        }
        assert STATE_MATRIX[Relationship.NEIGHBORING] == {"name", "map"}
        assert STATE_MATRIX[Relationship.CACHED] == {"name", "map"}

    def test_replicated_lacks_data(self):
        """Only the owner exports node data; replicas keep meta + maps +
        context but never the data itself (lookup vs retrieval split)."""
        assert "data" not in STATE_MATRIX[Relationship.REPLICATED]


class TestClassification:
    def test_owned(self, system):
        ns, sys_ = system
        p = sys_.peers[0]
        v = next(iter(p.owned))
        assert relationship_of(p, v) is Relationship.OWNED

    def test_replicated(self, system):
        ns, sys_ = system
        src, dst = sys_.peers[0], sys_.peers[1]
        v = next(iter(src.owned))
        dst.install_replica(src.build_replica_payload(v), 0.0)
        assert relationship_of(dst, v) is Relationship.REPLICATED

    def test_neighboring(self, system):
        ns, sys_ = system
        p = sys_.peers[0]
        v = next(iter(p.owned))
        for nbr in ns.neighbors(v):
            if not p.hosts(nbr):
                assert relationship_of(p, nbr) is Relationship.NEIGHBORING
                break

    def test_cached(self, system):
        ns, sys_ = system
        p = sys_.peers[0]
        free = next(v for v in range(len(ns))
                    if not p.hosts(v) and v not in p.pin_refs)
        p.cache.put(free, [1])
        assert relationship_of(p, free) is Relationship.CACHED

    def test_none(self, system):
        ns, sys_ = system
        p = sys_.peers[0]
        free = next(v for v in range(len(ns))
                    if not p.hosts(v) and v not in p.pin_refs
                    and v not in p.cache)
        assert relationship_of(p, free) is Relationship.NONE

    def test_owned_takes_precedence_over_neighboring(self, system):
        """A node can be owned AND a neighbor of another owned node;
        Table 1 classification reports the strongest relationship."""
        ns, sys_ = system
        p = sys_.peers[0]
        owned_pair = [
            v for v in p.owned
            if any(n in p.owned for n in ns.neighbors(v))
        ]
        if owned_pair:  # depends on random assignment; usually non-empty
            assert relationship_of(p, owned_pair[0]) is Relationship.OWNED


class TestStateKinds:
    def test_owned_has_all_columns(self, system):
        ns, sys_ = system
        p = sys_.peers[0]
        v = next(iter(p.owned))
        assert state_kinds(p, v) == {"name", "map", "data", "meta", "context"}

    def test_replica_has_table1_columns(self, system):
        ns, sys_ = system
        src, dst = sys_.peers[0], sys_.peers[1]
        v = next(iter(src.owned))
        dst.install_replica(src.build_replica_payload(v), 0.0)
        assert state_kinds(dst, v) == {"name", "map", "meta", "context"}

    def test_cached_has_name_and_map_only(self, system):
        ns, sys_ = system
        p = sys_.peers[0]
        free = next(v for v in range(len(ns))
                    if not p.hosts(v) and v not in p.pin_refs)
        p.cache.put(free, [1])
        assert state_kinds(p, free) == {"name", "map"}


class TestAudit:
    def test_fresh_system_passes_audit(self, system):
        ns, sys_ = system
        for p in sys_.peers:
            counts = audit_peer(p)
            assert counts[Relationship.OWNED] == len(p.owned)

    def test_audit_after_replication(self, system):
        ns, sys_ = system
        src, dst = sys_.peers[0], sys_.peers[1]
        v = next(iter(src.owned))
        dst.install_replica(src.build_replica_payload(v), 0.0)
        counts = audit_peer(dst)
        assert counts[Relationship.REPLICATED] == 1

    def test_audit_after_eviction(self, system):
        ns, sys_ = system
        src, dst = sys_.peers[0], sys_.peers[1]
        v = next(iter(src.owned))
        dst.install_replica(src.build_replica_payload(v), 0.0)
        dst.evict_replica(v, 1.0)
        counts = audit_peer(dst)
        assert counts[Relationship.REPLICATED] == 0
