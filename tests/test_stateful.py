"""Model-based (stateful) hypothesis tests.

The LRU cache and the event engine are compared operation-by-operation
against trivially correct reference models under random operation
sequences -- the classic way to catch ordering and eviction bugs that
example-based tests miss.
"""

from collections import OrderedDict

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.server.cache import LRUCache
from repro.sim.engine import Engine


class LRUCacheModel(RuleBasedStateMachine):
    """LRUCache vs an OrderedDict reference implementation."""

    def __init__(self) -> None:
        super().__init__()
        self.capacity = 4
        self.rmap = 3
        self.cache = LRUCache(capacity=self.capacity, rmap=self.rmap)
        self.model: "OrderedDict[int, list]" = OrderedDict()

    def _model_put(self, node: int, servers) -> None:
        if node in self.model:
            entry = self.model[node]
            for s in servers:
                if s not in entry and len(entry) < self.rmap:
                    entry.append(s)
            self.model.move_to_end(node)
            return
        entry = []
        for s in servers:
            if s not in entry and len(entry) < self.rmap:
                entry.append(s)
        if not entry:
            return
        if len(self.model) >= self.capacity:
            self.model.popitem(last=False)
        self.model[node] = entry

    @rule(node=st.integers(0, 9),
          servers=st.lists(st.integers(0, 5), max_size=5))
    def put(self, node, servers):
        self.cache.put(node, servers)
        self._model_put(node, servers)

    @rule(node=st.integers(0, 9))
    def get(self, node):
        got = self.cache.get(node)
        expected = self.model.get(node)
        if expected is not None:
            self.model.move_to_end(node)
        assert (None if got is None else list(got)) == expected

    @rule(node=st.integers(0, 9))
    def peek(self, node):
        got = self.cache.peek(node)
        assert (None if got is None else list(got)) == self.model.get(node)

    @rule(node=st.integers(0, 9))
    def touch(self, node):
        self.cache.touch(node)
        if node in self.model:
            self.model.move_to_end(node)

    @rule(node=st.integers(0, 9))
    def remove(self, node):
        assert self.cache.remove(node) == (self.model.pop(node, None)
                                           is not None)

    @rule(node=st.integers(0, 9), server=st.integers(0, 5))
    def remove_server(self, node, server):
        self.cache.remove_server(node, server)
        entry = self.model.get(node)
        if entry is not None and server in entry:
            entry.remove(server)
            if not entry:
                del self.model[node]

    @invariant()
    def same_contents_and_order(self):
        assert list(self.cache.nodes()) == list(self.model.keys())
        assert len(self.cache) <= self.capacity


TestLRUCacheModel = LRUCacheModel.TestCase
TestLRUCacheModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


class EngineModel(RuleBasedStateMachine):
    """Engine dispatch order vs a sorted reference list."""

    handles = Bundle("handles")

    def __init__(self) -> None:
        super().__init__()
        self.engine = Engine()
        self.expected = []  # (time, seq, tag) of live events
        self.fired = []
        self.seq = 0

    @rule(target=handles, delay=st.floats(0.0, 10.0))
    def schedule(self, delay):
        self.seq += 1
        tag = self.seq
        t = self.engine.now + delay
        handle = self.engine.schedule(t, self.fired.append, tag, handle=True)
        self.expected.append([t, self.seq, tag, handle])
        return (tag, handle)

    @rule(h=handles)
    def cancel(self, h):
        tag, handle = h
        handle.cancel()
        self.expected = [e for e in self.expected if e[2] != tag]

    @rule(horizon=st.floats(0.0, 5.0))
    def run_until(self, horizon):
        t = self.engine.now + horizon
        due = sorted((e for e in self.expected if e[0] <= t),
                     key=lambda e: (e[0], e[1]))
        self.expected = [e for e in self.expected if e[0] > t]
        before = len(self.fired)
        self.engine.run(until=t)
        assert self.fired[before:] == [e[2] for e in due]
        assert self.engine.now == t

    @invariant()
    def clock_monotone(self):
        assert self.engine.now >= 0.0


TestEngineModel = EngineModel.TestCase
TestEngineModel.settings = settings(
    max_examples=50, stateful_step_count=30, deadline=None
)
