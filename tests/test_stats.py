"""Unit tests for metric collection."""

import pytest

from repro.sim.stats import Counter, LatencyStats, TimeSeries, WindowAverager


class TestCounter:
    def test_inc_and_reset(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0


class TestTimeSeries:
    def test_add_buckets_by_second(self):
        ts = TimeSeries()
        ts.add(0.2)
        ts.add(0.9)
        ts.add(1.1, 3.0)
        assert ts.totals() == [2.0, 3.0]

    def test_total(self):
        ts = TimeSeries()
        ts.add(0.5, 2.0)
        ts.add(3.5, 4.0)
        assert ts.total() == 6.0
        assert ts.totals() == [2.0, 0.0, 0.0, 4.0]

    def test_observe_means_and_maxima(self):
        ts = TimeSeries()
        ts.observe(0.1, 1.0)
        ts.observe(0.2, 3.0)
        ts.observe(1.5, 10.0)
        assert ts.means() == [2.0, 10.0]
        assert ts.maxima() == [3.0, 10.0]

    def test_explicit_bin_count_pads(self):
        ts = TimeSeries()
        ts.add(0.5)
        assert ts.totals(n_bins=3) == [1.0, 0.0, 0.0]

    def test_custom_width(self):
        ts = TimeSeries(bin_width=0.5)
        ts.add(0.6)
        assert ts.totals() == [0.0, 1.0]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            TimeSeries(bin_width=0.0)

    def test_sparse_gap_bins_read_as_empty(self):
        """The dense-list backing must report untouched interior bins
        as zero-total, zero-mean, zero-max."""
        ts = TimeSeries()
        ts.add(0.5, 1.0)
        ts.add(100.5, 2.0)
        totals = ts.totals()
        assert len(totals) == 101
        assert totals[0] == 1.0 and totals[100] == 2.0
        assert all(t == 0.0 for t in totals[1:100])
        assert ts.means()[50] == 0.0

    def test_out_of_order_observations(self):
        """Growing the arrays forward must not lose earlier bins."""
        ts = TimeSeries()
        ts.observe(5.5, 4.0)
        ts.observe(1.5, 2.0)
        ts.observe(1.6, 6.0)
        assert ts.means()[1] == 4.0
        assert ts.maxima()[1] == 6.0
        assert ts.maxima()[5] == 4.0

    def test_negative_values_max_is_true_max(self):
        """A bin of all-negative observations must report the largest
        (least negative) value, not a sticky 0.0 sentinel."""
        ts = TimeSeries()
        ts.observe(0.1, -5.0)
        ts.observe(0.2, -2.0)
        assert ts.maxima() == [-2.0]
        assert ts.means() == [-3.5]


class TestWindowAverager:
    def test_window_one_is_identity(self):
        s = [1.0, 5.0, 2.0]
        assert WindowAverager.smooth(s, 1) == s

    def test_centered_window(self):
        s = [0.0, 3.0, 6.0]
        out = WindowAverager.smooth(s, 3)
        assert out[1] == pytest.approx(3.0)
        assert out[0] == pytest.approx(1.5)  # truncated at the edge
        assert out[2] == pytest.approx(4.5)

    def test_smoothing_reduces_peaks(self):
        """The Fig. 6 (right) effect: 11-second averaging pulls the
        per-second maxima toward the mean."""
        series = [0.1] * 50
        series[25] = 1.0
        smoothed = WindowAverager.smooth(series, 11)
        assert max(smoothed) < max(series)
        assert max(smoothed) > 0.1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowAverager.smooth([1.0], 0)


class TestLatencyStats:
    def test_mean_and_max(self):
        ls = LatencyStats()
        for x in (0.1, 0.2, 0.3):
            ls.record(x)
        assert ls.count == 3
        assert ls.mean == pytest.approx(0.2)
        assert ls.max == pytest.approx(0.3)

    def test_empty(self):
        ls = LatencyStats()
        assert ls.mean == 0.0
        assert ls.percentile(0.5) == 0.0

    def test_percentiles_ordered(self):
        ls = LatencyStats(hist_width=0.01)
        for i in range(100):
            ls.record(i / 100.0)
        assert ls.percentile(0.5) <= ls.percentile(0.9) <= ls.percentile(0.99)

    def test_percentile_bounds(self):
        ls = LatencyStats()
        ls.record(1.0)
        with pytest.raises(ValueError):
            ls.percentile(1.5)
