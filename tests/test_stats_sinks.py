"""Stats sinks are observers only: swapping them must not change a run.

A fixed-seed fig3-style workload is executed under the default
SystemStats, under NullSink, and under a MultiSink fanning out to two
SystemStats collectors; the simulation-owned counters (per-peer
processed/drops, replica counts) must be identical in all three, and
every MultiSink child must equal the standalone collector.
"""

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.sim.stats import MultiSink, NullSink, StatsSink, SystemStats
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import cuzipf_stream


def run_fig3(stats=None):
    """One small fixed-seed BCR run; returns (system, sim-owned state)."""
    ns = balanced_tree(levels=6)
    cfg = SystemConfig.replicated(n_servers=4, seed=7, cache_slots=8)
    system = build_system(ns, cfg, stats=stats)
    spec = cuzipf_stream(rate=300.0, alpha=1.0, warmup=1.0, phase=1.0,
                         n_phases=2, seed=7)
    WorkloadDriver(system, spec).start()
    system.run_until(spec.duration + 1.0)
    fingerprint = {
        "processed": [p.n_processed for p in system.peers],
        "queue_drops": [p.n_queue_drops for p in system.peers],
        "replicas": [sorted(p.replicas) for p in system.peers],
        "hosted": [sorted(p.hosted_list) for p in system.peers],
        "now": system.engine.now,
        "events": system.engine.n_dispatched,
    }
    return system, fingerprint


def stats_snapshot(s: SystemStats):
    return (
        s.n_injected, s.n_completed, s.n_dropped, dict(s.drop_reasons),
        s.hops_sum, s.n_stale_hops, dict(s.route_sources),
        s.latency.count, s.latency.total,
        list(s.level_replicas), list(s.level_evictions),
    )


class TestSinkEquivalence:
    def test_null_sink_leaves_run_identical(self):
        _, base = run_fig3()
        system, null_fp = run_fig3(stats=NullSink())
        assert null_fp == base
        assert isinstance(system.stats, NullSink)

    def test_multisink_children_match_standalone(self):
        ref_system, base = run_fig3()
        a = SystemStats(max_depth=ref_system.ns.max_depth)
        b = SystemStats(max_depth=ref_system.ns.max_depth)
        multi_system, multi_fp = run_fig3(stats=MultiSink([a, b]))
        assert multi_fp == base
        assert stats_snapshot(a) == stats_snapshot(b)
        assert stats_snapshot(a) == stats_snapshot(ref_system.stats)

    def test_base_sink_hooks_are_noops(self):
        s = StatsSink()
        s.record_injected(0.0)
        s.record_drop(0.0, reason="queue")
        s.record_completion(0.0, 0.1, 3, 0)
        s.record_forward("cache")
        s.record_stale_hop(0.0)
        s.record_replica_created(0.0, 1)
        s.record_replica_evicted(0.0, 1)
        s.sample_load(0.0, 0.5)
        s.record_client_lookup(0.0)
        s.record_client_timeout(0.0)
        s.record_client_retry(0.0)


class TestSystemStatsAsSink:
    def test_default_system_uses_systemstats(self):
        ns = balanced_tree(levels=4)
        cfg = SystemConfig.replicated(n_servers=2, seed=1)
        system = build_system(ns, cfg)
        assert isinstance(system.stats, SystemStats)

    def test_client_counters_flow_into_sink(self):
        from repro.client.client import TerraDirClient

        ns = balanced_tree(levels=5)
        cfg = SystemConfig.replicated(n_servers=3, seed=2)
        system = build_system(ns, cfg)
        client = TerraDirClient(system, home_server=0)
        fut = client.lookup(ns.name_of(next(iter(system.peers[1].owned))))
        client.wait(fut)
        assert system.stats.n_client_lookups == client.n_lookups >= 1
