"""Tests for the generic parameter-sweep harness."""

import pytest

from repro.experiments.common import Scale
from repro.experiments.sweeps import sweep

MICRO = Scale(
    name="tiny", ns_levels=7, nc_nodes=500, n_servers=8,
    warmup=2.0, phase=2.0, n_phases=1, drain=2.0, cache_slots=8,
    digest_probe_limit=1,
)


class TestSweep:
    def test_one_summary_per_value(self):
        results = sweep("rmap", [2, 4], scale=MICRO, seed=1)
        assert list(results) == [2, 4]
        for summary in results.values():
            assert "drop_fraction" in summary
            assert "replicas_created" in summary

    def test_l_high_controls_replication_aggressiveness(self):
        """Lower high-water threshold => at least as many replicas."""
        results = sweep("l_high", [0.4, 0.95], scale=MICRO,
                        utilization=0.45, alpha=1.0, seed=2)
        assert (
            results[0.4]["replicas_created"]
            >= results[0.95]["replicas_created"]
        )

    def test_replication_toggle_sweep(self):
        results = sweep("replication_enabled", [False, True], scale=MICRO,
                        seed=3)
        assert results[False]["replicas_created"] == 0

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            sweep("no_such_knob", [1], scale=MICRO)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep("rmap", [], scale=MICRO)

    def test_deterministic(self):
        a = sweep("rfact", [1.0], scale=MICRO, seed=4)
        b = sweep("rfact", [1.0], scale=MICRO, seed=4)
        assert a == b
