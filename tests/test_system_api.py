"""Tests for System-level convenience APIs and the experiments runner."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree


@pytest.fixture
def system():
    ns = balanced_tree(levels=5)
    return ns, build_system(
        ns, SystemConfig.replicated(n_servers=4, seed=2,
                                    digest_probe_limit=1)
    )


class TestSystemAPI:
    def test_lookup_name(self, system):
        ns, sys_ = system
        name = ns.name_of(5)
        qid = sys_.lookup_name(0, name)
        assert qid == 1
        sys_.engine.run(until=5.0)
        assert sys_.stats.n_completed == 1

    def test_hosts_of_ground_truth(self, system):
        ns, sys_ = system
        node = next(iter(sys_.peers[1].owned))
        assert sys_.hosts_of(node) == [1]
        other = sys_.peers[2]
        other.install_replica(
            sys_.peers[1].build_replica_payload(node), 0.0
        )
        assert sorted(sys_.hosts_of(node)) == [1, 2]

    def test_loads_shape(self, system):
        ns, sys_ = system
        loads = sys_.loads()
        assert len(loads) == 4
        assert all(0.0 <= v <= 1.0 for v in loads)

    def test_hosted_counts(self, system):
        ns, sys_ = system
        counts = sys_.hosted_counts()
        assert sum(counts) == len(ns)

    def test_repr(self, system):
        ns, sys_ = system
        assert "servers=4" in repr(sys_)

    def test_qids_monotone(self, system):
        ns, sys_ = system
        q1 = sys_.inject(0, 1)
        q2 = sys_.inject(0, 2)
        assert q2 == q1 + 1

    def test_maintenance_idempotent(self, system):
        ns, sys_ = system
        sys_.start_maintenance()
        before = len(sys_.engine)
        sys_.start_maintenance()
        assert len(sys_.engine) == before


class TestRunnerRegistry:
    def test_all_experiments_registered(self):
        from repro.experiments.runner import EXPERIMENTS

        assert set(EXPERIMENTS) >= {
            "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "churn", "heterogeneity", "resilience", "static",
        }

    def test_unknown_experiment_rejected(self, monkeypatch):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["nope"])

    def test_peer_repr(self, system):
        ns, sys_ = system
        assert "sid=0" in repr(sys_.peers[0])


class TestProgressReporting:
    def test_progress_lines_printed(self, system, capsys):
        ns, sys_ = system
        for i in range(5):
            sys_.inject(0, i)
        sys_.run_until(3.0, progress_every=1.0)
        out = capsys.readouterr().out
        assert out.count("[t=") >= 2
        assert "injected=" in out

    def test_no_progress_by_default(self, system, capsys):
        ns, sys_ = system
        sys_.inject(0, 1)
        sys_.run_until(2.0)
        assert capsys.readouterr().out == ""


class TestDebugLogging:
    def test_session_events_logged(self, system, caplog):
        import logging

        ns, sys_ = system
        p = sys_.peers[0]
        p.known_loads[1] = (0.0, 0.0)
        p.meter.apply_adjustment(1.0)
        with caplog.at_level(logging.DEBUG, logger="repro.replication"):
            p.repl.maybe_trigger(0.0)
            sys_.engine.run(until=1.0)
        assert any("opens session" in r.message for r in caplog.records)

    def test_failure_events_logged(self, system, caplog):
        import logging

        from repro.cluster.failures import FailureInjector

        ns, sys_ = system
        inj = FailureInjector(sys_)
        with caplog.at_level(logging.INFO, logger="repro.failures"):
            inj.fail(2)
            inj.recover(2)
        msgs = [r.message for r in caplog.records]
        assert any("failed" in m for m in msgs)
        assert any("recovered" in m for m in msgs)
