"""Property-based whole-system tests: random micro-campaigns must
preserve the protocol's structural invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree, random_tree
from repro.server.state import audit_peer
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import StreamSegment, WorkloadSpec


configs = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "caching_enabled": st.booleans(),
        "replication_enabled": st.booleans(),
        "digests_enabled": st.booleans(),
        "path_propagation": st.booleans(),
        "hysteresis_enabled": st.booleans(),
        "advertisement_enabled": st.booleans(),
        "rfact": st.sampled_from([0.1, 0.5, 2.0]),
        "rmap": st.integers(1, 6),
        "queue_size": st.integers(0, 16),
        "cache_slots": st.integers(0, 16),
        "l_high": st.floats(0.3, 0.95),
        "replica_idle_timeout": st.sampled_from([0.0, 1.0]),
    }
)

workloads = st.fixed_dictionaries(
    {
        "alpha": st.sampled_from([0.0, 0.75, 1.5]),
        "rate": st.floats(50.0, 600.0),
        "wseed": st.integers(0, 2**16),
        "reshuffle": st.booleans(),
    }
)


@given(configs, workloads, st.integers(0, 3))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_campaign_preserves_invariants(cfg_kwargs, wl, tree_pick):
    if tree_pick == 3:
        ns = random_tree(150, seed=tree_pick)
    else:
        ns = balanced_tree(levels=5 + tree_pick)
    cfg = SystemConfig(
        n_servers=8, digest_probe_limit=1, bootstrap_known_peers=4,
        **cfg_kwargs,
    )
    system = build_system(ns, cfg)
    segments = [StreamSegment(2.0, alpha=wl["alpha"],
                              reshuffle=False)]
    if wl["reshuffle"]:
        segments.append(StreamSegment(2.0, alpha=max(wl["alpha"], 0.75),
                                      reshuffle=True))
    spec = WorkloadSpec(rate=wl["rate"], segments=tuple(segments),
                        seed=wl["wseed"])
    WorkloadDriver(system, spec).run(extra_time=3.0)

    stats = system.stats
    # 1. accounting closes: nothing invented, (almost) nothing leaks
    assert stats.n_completed + stats.n_dropped <= stats.n_injected
    assert stats.n_completed + stats.n_dropped >= 0.95 * stats.n_injected

    # 2. ownership is a partition, always
    owned = sorted(v for p in system.peers for v in p.owned)
    assert owned == list(range(len(ns)))

    # 3. bounds: rfact, cache capacity, queue, hosted-list consistency
    for p in system.peers:
        assert len(p.replicas) <= max(1, int(cfg.rfact * len(p.owned)))
        assert len(p.cache) <= p.cache.capacity
        assert len(p.queue) <= cfg.queue_size
        assert sorted(p.hosted_list) == sorted(
            list(p.owned) + list(p.replicas)
        )

    # 4. replicas only exist when the feature is on
    if not cfg.replication_enabled:
        assert system.total_replicas() == 0
        assert stats.n_replicas_created == 0

    # 5. caches only hold state when caching is on
    if not cfg.caching_enabled:
        assert all(len(p.cache) == 0 for p in system.peers)

    # 6. Table 1 discipline holds for every server
    for p in system.peers:
        audit_peer(p)

    # 7. control traffic stays far below query traffic
    if system.transport.n_sent:
        assert (
            system.transport.n_control_sent <= system.transport.n_sent
        )
