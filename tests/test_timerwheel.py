"""Unit tests for the coarse timer-wheel (cancel-heavy timeouts)."""

import pytest

from repro.sim.engine import Engine, SimError
from repro.sim.timerwheel import TimerWheel


class TestFiring:
    def test_fires_at_exact_deadline(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        fired = []
        wheel.schedule_after(2.37, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [2.37]

    def test_fire_order_matches_deadline_order_across_buckets(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        fired = []
        for d in (3.5, 0.25, 2.1, 0.75):
            wheel.schedule_after(d, fired.append, d)
        eng.run()
        assert fired == [0.25, 0.75, 2.1, 3.5]

    def test_same_deadline_fires_in_arming_order(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        fired = []
        for tag in "abc":
            wheel.schedule_after(1.5, fired.append, tag)
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_deadline_on_bucket_boundary(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        fired = []
        wheel.schedule_after(2.0, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [2.0]

    def test_delay_shorter_than_tick(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        fired = []
        eng.schedule(0.9, lambda: wheel.schedule_after(
            0.05, lambda: fired.append(eng.now)))
        eng.run()
        assert fired == [pytest.approx(0.95)]

    def test_negative_delay_rejected(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        with pytest.raises(SimError):
            wheel.schedule_after(-0.1, lambda: None)

    def test_bad_tick_rejected(self):
        with pytest.raises(ValueError):
            TimerWheel(Engine(), tick=0.0)


class TestCancellation:
    def test_cancel_before_bucket_fires(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        fired = []
        h = wheel.schedule_after(5.5, fired.append, "x")
        h.cancel()
        eng.run()
        assert fired == []
        assert h.cancelled

    def test_cancel_after_promotion(self):
        """A timer promoted to the heap can still be cancelled."""
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        fired = []
        h = wheel.schedule_after(1.7, fired.append, "x")
        # between the bucket event (t=1.0) and the deadline (t=1.7)
        eng.schedule(1.3, h.cancel)
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        h = wheel.schedule_after(1.0, lambda: None)
        h.cancel()
        h.cancel()
        eng.run()
        assert wheel.n_cancelled == 1


class TestHeapHygiene:
    def test_cancelled_timers_leave_no_heap_entries(self):
        """The motivating property: repeated arm/cancel cycles must not
        accumulate dead heap entries the way lazily-cancelled
        EventHandles do (one per completed lookup at paper scale)."""
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        for _ in range(10_000):
            wheel.schedule_after(10.0, lambda: None).cancel()
        # one bucket event at most; never 10k dead entries
        assert len(wheel) == 0
        assert eng.pending <= 1

    def test_pending_events_bounded_by_buckets_not_timers(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        handles = [wheel.schedule_after(0.001 * i + 5.0, lambda: None)
                   for i in range(5_000)]
        # 5k armed timers spanning 5 distinct seconds -> <= 6 buckets
        assert len(wheel) == 5_000
        assert eng.pending <= 6
        for h in handles:
            h.cancel()
        assert len(wheel) == 0
        eng.run()
        assert eng.now < 11.0  # only bucket events fired

    def test_interleaved_arm_cancel_under_run(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=0.5)
        fired = []

        def churn(i):
            h = wheel.schedule_after(2.0, fired.append, i)
            if i % 10 != 0:
                eng.schedule(eng.now + 1.0, h.cancel)

        for i in range(200):
            eng.schedule(0.01 * i, churn, i)
        eng.run()
        assert fired == [i for i in range(200) if i % 10 == 0]
        assert eng.pending == 0


class TestAccounting:
    def test_counters_and_repr(self):
        eng = Engine()
        wheel = TimerWheel(eng, tick=1.0)
        h1 = wheel.schedule_after(0.5, lambda: None)
        wheel.schedule_after(0.6, lambda: None)
        h1.cancel()
        assert wheel.n_armed == 2
        assert wheel.n_cancelled == 1
        assert "TimerWheel" in repr(wheel)
        assert "armed" in repr(h1) or "cancelled" in repr(h1)
        eng.run()
        assert wheel.n_fired == 1
