"""Tests for query tracing, replay, and empirical path workloads."""

import io

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import unif_stream
from repro.workload.trace import (
    EmpiricalWorkloadDriver,
    QueryTrace,
    TraceRecorder,
    namespace_from_paths,
    replay_trace,
)


def make(seed=9, **over):
    ns = balanced_tree(levels=6)
    defaults = dict(n_servers=8, seed=seed, digest_probe_limit=1)
    defaults.update(over)
    return ns, build_system(ns, SystemConfig.replicated(**defaults))


class TestQueryTrace:
    def test_save_load_roundtrip(self):
        trace = QueryTrace([(0.5, 1, 10), (1.25, 2, 20)])
        buf = io.StringIO()
        trace.save(buf)
        buf.seek(0)
        loaded = QueryTrace.load(buf)
        assert loaded.events == trace.events

    def test_load_skips_comments_and_sorts(self):
        buf = io.StringIO("# header\n2.0 1 5\n\n1.0 0 3\n")
        trace = QueryTrace.load(buf)
        assert trace.events == [(1.0, 0, 3), (2.0, 1, 5)]

    def test_load_rejects_malformed(self):
        with pytest.raises(ValueError):
            QueryTrace.load(io.StringIO("1.0 2\n"))

    def test_scaled(self):
        trace = QueryTrace([(1.0, 0, 1)])
        assert trace.scaled(0.5).events == [(0.5, 0, 1)]
        with pytest.raises(ValueError):
            trace.scaled(0.0)

    def test_duration(self):
        assert QueryTrace().duration == 0.0
        assert QueryTrace([(3.0, 0, 0)]).duration == 3.0


class TestRecordReplay:
    def test_recording_captures_all_injections(self):
        ns, system = make()
        recorder = TraceRecorder(system)
        driver = WorkloadDriver(system, unif_stream(200.0, 5.0, seed=1))
        driver.run()
        assert len(recorder.trace) == driver.n_generated
        assert recorder.trace.duration <= 5.0

    def test_double_tap_rejected(self):
        ns, system = make()
        TraceRecorder(system)
        with pytest.raises(RuntimeError):
            TraceRecorder(system)

    def test_replay_reproduces_run_exactly(self):
        """Same trace into two identically seeded systems => identical
        outcomes; that is the point of record/replay A/B testing."""
        ns, system = make()
        recorder = TraceRecorder(system)
        WorkloadDriver(system, unif_stream(200.0, 5.0, seed=1)).run()
        trace = recorder.trace

        outcomes = []
        for _ in range(2):
            ns2, replay_sys = make()
            replay_trace(replay_sys, trace)
            replay_sys.run_until(trace.duration + 5.0)
            outcomes.append(
                (replay_sys.stats.n_completed,
                 round(replay_sys.stats.latency.mean, 12))
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] > 0

    def test_replay_on_different_config(self):
        """The same trace can drive a differently configured system --
        e.g. caching disabled -- for controlled comparisons."""
        ns, system = make()
        recorder = TraceRecorder(system)
        WorkloadDriver(system, unif_stream(200.0, 4.0, seed=2)).run()
        trace = recorder.trace

        ns2, other = make(caching_enabled=False)
        replay_trace(other, trace)
        other.run_until(trace.duration + 5.0)
        assert other.stats.n_injected == len(trace)


class TestNamespaceFromPaths:
    def test_paths_and_counts(self):
        ns, counts = namespace_from_paths(
            ["3 /a/b/file1", "/a/b/file2", "# comment", "", "7 /a/c"]
        )
        assert len(ns) == 6  # /, /a, /a/b, file1, file2, /a/c
        assert counts[ns.id_of("/a/b/file1")] == 3
        assert counts[ns.id_of("/a/b/file2")] == 1
        assert counts[ns.id_of("/a/c")] == 7
        assert ns.id_of("/a/b") not in counts  # implicit ancestor

    def test_duplicate_paths_accumulate(self):
        ns, counts = namespace_from_paths(["2 /x", "5 /x"])
        assert counts[ns.id_of("/x")] == 7

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            namespace_from_paths(["abc /x y"])

    def test_bad_name_rejected(self):
        with pytest.raises(Exception):
            namespace_from_paths(["relative/path"])


class TestEmpiricalDriver:
    def test_destinations_follow_weights(self):
        ns, system = make()
        hot, cold = 5, 9
        weights = {hot: 100.0, cold: 1.0}
        seen = {hot: 0, cold: 0}
        system.on_inject = lambda t, s, d: seen.__setitem__(d, seen[d] + 1)
        drv = EmpiricalWorkloadDriver(system, rate=300.0, duration=5.0,
                                      weights=weights, seed=3)
        drv.run()
        assert seen[hot] > 20 * max(1, seen[cold])
        assert drv.n_generated == seen[hot] + seen[cold]

    def test_zero_weights_never_queried(self):
        ns, system = make()
        dests = []
        system.on_inject = lambda t, s, d: dests.append(d)
        drv = EmpiricalWorkloadDriver(system, rate=100.0, duration=3.0,
                                      weights={4: 1.0, 6: 0.0}, seed=1)
        drv.run()
        assert set(dests) == {4}

    def test_validation(self):
        ns, system = make()
        with pytest.raises(ValueError):
            EmpiricalWorkloadDriver(system, rate=0, duration=1, weights={1: 1})
        with pytest.raises(ValueError):
            EmpiricalWorkloadDriver(system, rate=1, duration=0, weights={1: 1})
        with pytest.raises(ValueError):
            EmpiricalWorkloadDriver(system, rate=1, duration=1, weights={})
        drv = EmpiricalWorkloadDriver(system, rate=1, duration=1,
                                      weights={1: 1.0})
        drv.start()
        with pytest.raises(RuntimeError):
            drv.start()
