"""Unit tests for the constant-latency transport."""

import pytest

from repro.net.transport import Transport
from repro.sim.engine import Engine


class TestTransport:
    def test_delivery_after_delay(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.025)
        got = []
        tr.register(0, lambda m: got.append((eng.now, m)))
        tr.send(0, "hello")
        eng.run()
        assert got == [(0.025, "hello")]

    def test_separate_traffic_counters(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.0)
        tr.register(0, lambda m: None)
        tr.send(0, "q")
        tr.send(0, "c", control=True)
        assert tr.n_sent == 1
        assert tr.n_control_sent == 1

    def test_unknown_destination_raises(self):
        tr = Transport(Engine(), net_delay=0.0)
        with pytest.raises(KeyError):
            tr.send(7, "x")

    def test_double_registration_rejected(self):
        tr = Transport(Engine(), net_delay=0.0)
        tr.register(0, lambda m: None)
        with pytest.raises(ValueError):
            tr.register(0, lambda m: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Transport(Engine(), net_delay=-1.0)

    def test_fifo_between_same_pair(self):
        """Messages to the same destination preserve send order
        (constant delay + stable tie-breaking)."""
        eng = Engine()
        tr = Transport(eng, net_delay=0.01)
        got = []
        tr.register(0, got.append)
        for i in range(5):
            tr.send(0, i)
        eng.run()
        assert got == [0, 1, 2, 3, 4]

    def test_n_servers(self):
        tr = Transport(Engine(), net_delay=0.0)
        tr.register(0, lambda m: None)
        tr.register(1, lambda m: None)
        assert tr.n_servers == 2


class TestJitter:
    def test_zero_jitter_is_constant(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.02, net_jitter=0.0)
        times = []
        tr.register(0, lambda m: times.append(eng.now))
        for _ in range(5):
            tr.send(0, "x")
        eng.run()
        assert all(abs(t - 0.02) < 1e-12 for t in times)

    def test_jitter_spreads_delays(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.02, net_jitter=0.01, jitter_seed=1)
        times = []
        tr.register(0, lambda m: times.append(eng.now))
        for _ in range(200):
            tr.send(0, "x")
        eng.run()
        assert min(times) >= 0.02
        assert len(set(round(t, 9) for t in times)) > 100
        mean_extra = sum(times) / len(times) - 0.02
        assert mean_extra == pytest.approx(0.01, rel=0.4)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            Transport(Engine(), net_delay=0.01, net_jitter=-1.0)

    def test_system_still_correct_under_jitter(self):
        from repro.cluster.builder import build_system
        from repro.cluster.config import SystemConfig
        from repro.namespace.generators import balanced_tree
        from repro.workload.arrivals import WorkloadDriver
        from repro.workload.streams import unif_stream

        ns = balanced_tree(levels=5)
        cfg = SystemConfig.replicated(n_servers=4, seed=1, net_jitter=0.01,
                                      digest_probe_limit=1)
        system = build_system(ns, cfg)
        WorkloadDriver(system, unif_stream(100.0, 4.0, seed=1)).run()
        assert system.stats.completion_fraction > 0.95
