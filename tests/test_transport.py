"""Unit tests for the constant-latency transport."""

import pytest

from repro.net.transport import Transport
from repro.sim.engine import Engine


class TestTransport:
    def test_delivery_after_delay(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.025)
        got = []
        tr.register(0, lambda m: got.append((eng.now, m)))
        tr.send(0, "hello")
        eng.run()
        assert got == [(0.025, "hello")]

    def test_separate_traffic_counters(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.0)
        tr.register(0, lambda m: None)
        tr.send(0, "q")
        tr.send(0, "c", control=True)
        assert tr.n_sent == 1
        assert tr.n_control_sent == 1

    def test_unknown_destination_raises(self):
        tr = Transport(Engine(), net_delay=0.0)
        with pytest.raises(KeyError):
            tr.send(7, "x")

    def test_double_registration_rejected(self):
        tr = Transport(Engine(), net_delay=0.0)
        tr.register(0, lambda m: None)
        with pytest.raises(ValueError):
            tr.register(0, lambda m: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Transport(Engine(), net_delay=-1.0)

    def test_fifo_between_same_pair(self):
        """Messages to the same destination preserve send order
        (constant delay + stable tie-breaking)."""
        eng = Engine()
        tr = Transport(eng, net_delay=0.01)
        got = []
        tr.register(0, got.append)
        for i in range(5):
            tr.send(0, i)
        eng.run()
        assert got == [0, 1, 2, 3, 4]

    def test_n_servers(self):
        tr = Transport(Engine(), net_delay=0.0)
        tr.register(0, lambda m: None)
        tr.register(1, lambda m: None)
        assert tr.n_servers == 2


class TestDeliveryRing:
    def test_ring_enabled_only_for_constant_positive_delay(self):
        assert Transport(Engine(), net_delay=0.01)._ring_enabled
        assert not Transport(Engine(), net_delay=0.0)._ring_enabled
        assert not Transport(Engine(), net_delay=0.01,
                             net_jitter=0.005)._ring_enabled

    def test_one_pending_event_for_many_in_flight(self):
        """The point of the ring: N in-flight messages cost the engine
        one drain event, not N heap entries."""
        eng = Engine()
        tr = Transport(eng, net_delay=0.05)
        tr.register(0, lambda m: None)
        for i in range(1000):
            tr.send(0, i)
        assert tr.n_in_flight == 1000
        assert eng.pending == 1
        eng.run()
        assert tr.n_in_flight == 0
        assert eng.pending == 0

    def test_sends_during_drain_deliver_one_delay_later(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.01)
        got = []

        def relay(m):
            got.append((round(eng.now, 9), m))
            if m < 3:
                tr.send(0, m + 1)

        tr.register(0, relay)
        tr.send(0, 0)
        eng.run()
        assert got == [(0.01, 0), (0.02, 1), (0.03, 2), (0.04, 3)]

    def test_in_flight_loss_at_delivery_time(self):
        """A server failing while a message is in flight loses it at
        delivery time on the ring path, same as the heap path."""
        eng = Engine()
        tr = Transport(eng, net_delay=0.02)
        got, lost = [], []
        tr.register(0, got.append)
        tr.on_lost = lambda dest, msg: lost.append((dest, msg))
        tr.send(0, "doomed")
        eng.schedule(0.01, tr.fail_server, 0)
        eng.run()
        assert got == []
        assert lost == [(0, "doomed")]
        assert tr.n_lost == 1

    def test_ring_order_matches_heap_path_order(self):
        """Determinism: with zero jitter the ring path must produce the
        identical delivery sequence the per-message heap path would.
        Force the fallback by monkeying the flag, then compare."""
        def run_trace(force_heap):
            eng = Engine()
            tr = Transport(eng, net_delay=0.01)
            if force_heap:
                tr._ring_enabled = False
            trace = []

            def make(sid):
                def handler(m):
                    trace.append((round(eng.now, 9), sid, m))
                    if m > 0:
                        tr.send((sid + 1) % 3, m - 1)
                return handler

            for sid in range(3):
                tr.register(sid, make(sid))
            # two interleaved chains plus a same-time burst
            tr.send(0, 5)
            tr.send(1, 5)
            for i in range(4):
                tr.send(2, 0)
            eng.run()
            return trace

        assert run_trace(force_heap=False) == run_trace(force_heap=True)

    def test_jitter_path_deterministic_for_fixed_seed(self):
        """The heap fallback stays seed-deterministic: same seed, same
        delivery order; different seed, different order."""
        def run_trace(seed):
            eng = Engine()
            tr = Transport(eng, net_delay=0.01, net_jitter=0.02,
                           jitter_seed=seed)
            trace = []
            tr.register(0, lambda m: trace.append((round(eng.now, 12), m)))
            for i in range(50):
                tr.send(0, i)
            eng.run()
            return trace

        assert run_trace(seed=3) == run_trace(seed=3)
        assert run_trace(seed=3) != run_trace(seed=4)

    def test_send_to_failed_server_never_enters_ring(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.01)
        tr.register(0, lambda m: None)
        tr.fail_server(0)
        tr.send(0, "x")
        assert tr.n_in_flight == 0
        assert tr.n_lost == 1


class TestJitter:
    def test_zero_jitter_is_constant(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.02, net_jitter=0.0)
        times = []
        tr.register(0, lambda m: times.append(eng.now))
        for _ in range(5):
            tr.send(0, "x")
        eng.run()
        assert all(abs(t - 0.02) < 1e-12 for t in times)

    def test_jitter_spreads_delays(self):
        eng = Engine()
        tr = Transport(eng, net_delay=0.02, net_jitter=0.01, jitter_seed=1)
        times = []
        tr.register(0, lambda m: times.append(eng.now))
        for _ in range(200):
            tr.send(0, "x")
        eng.run()
        assert min(times) >= 0.02
        assert len({round(t, 9) for t in times}) > 100
        mean_extra = sum(times) / len(times) - 0.02
        assert mean_extra == pytest.approx(0.01, rel=0.4)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            Transport(Engine(), net_delay=0.01, net_jitter=-1.0)

    def test_system_still_correct_under_jitter(self):
        from repro.cluster.builder import build_system
        from repro.cluster.config import SystemConfig
        from repro.namespace.generators import balanced_tree
        from repro.workload.arrivals import WorkloadDriver
        from repro.workload.streams import unif_stream

        ns = balanced_tree(levels=5)
        cfg = SystemConfig.replicated(n_servers=4, seed=1, net_jitter=0.01,
                                      digest_probe_limit=1)
        system = build_system(ns, cfg)
        WorkloadDriver(system, unif_stream(100.0, 4.0, seed=1)).run()
        assert system.stats.completion_fraction > 0.95
