"""Unit tests for the Namespace tree and its distance metric."""

import pytest

from repro.namespace.tree import Namespace, NamespaceBuilder, ROOT


@pytest.fixture
def small():
    """Root with two subtrees:

    /a, /a/x, /a/y, /b, /b/z
    """
    b = NamespaceBuilder()
    a = b.add_child(ROOT, "a")
    x = b.add_child(a, "x")
    y = b.add_child(a, "y")
    bb = b.add_child(ROOT, "b")
    z = b.add_child(bb, "z")
    return b.build(), dict(a=a, x=x, y=y, b=bb, z=z)


class TestBuilder:
    def test_root_exists(self):
        ns = NamespaceBuilder().build()
        assert len(ns) == 1
        assert ns.parent[ROOT] == ROOT

    def test_add_child_rejects_bad_parent(self):
        b = NamespaceBuilder()
        with pytest.raises(IndexError):
            b.add_child(5, "x")

    def test_add_child_rejects_bad_label(self):
        b = NamespaceBuilder()
        with pytest.raises(ValueError):
            b.add_child(ROOT, "a/b")
        with pytest.raises(ValueError):
            b.add_child(ROOT, "")

    def test_add_path_dedupes(self):
        b = NamespaceBuilder()
        v1 = b.add_path("/a/b")
        v2 = b.add_path("/a/b")
        assert v1 == v2
        assert len(b) == 3  # root, a, b

    def test_from_names(self):
        ns = Namespace.from_names(["/a/b/c", "/a/d"])
        assert len(ns) == 5
        assert ns.id_of("/a/b") >= 0


class TestNames:
    def test_name_roundtrip(self, small):
        ns, ids = small
        for label, v in ids.items():
            assert ns.id_of(ns.name_of(v)) == v

    def test_root_name(self, small):
        ns, _ = small
        assert ns.name_of(ROOT) == "/"

    def test_unknown_name_raises(self, small):
        ns, _ = small
        with pytest.raises(KeyError):
            ns.id_of("/nope")

    def test_label_of(self, small):
        ns, ids = small
        assert ns.label_of(ids["x"]) == "x"
        assert ns.label_of(ROOT) == ""


class TestStructure:
    def test_depths(self, small):
        ns, ids = small
        assert ns.depth[ROOT] == 0
        assert ns.depth[ids["a"]] == 1
        assert ns.depth[ids["x"]] == 2
        assert ns.max_depth == 2

    def test_neighbors_of_root(self, small):
        ns, ids = small
        assert set(ns.neighbors(ROOT)) == {ids["a"], ids["b"]}

    def test_neighbors_include_parent(self, small):
        ns, ids = small
        assert set(ns.neighbors(ids["a"])) == {ROOT, ids["x"], ids["y"]}

    def test_leaf(self, small):
        ns, ids = small
        assert ns.is_leaf(ids["x"])
        assert not ns.is_leaf(ids["a"])
        assert ns.n_leaves == 3

    def test_subtree(self, small):
        ns, ids = small
        assert set(ns.subtree(ids["a"])) == {ids["a"], ids["x"], ids["y"]}
        assert set(ns.subtree(ROOT)) == set(range(len(ns)))

    def test_level_sizes(self, small):
        ns, _ = small
        assert ns.level_sizes() == [1, 2, 3]

    def test_nodes_at_depth(self, small):
        ns, ids = small
        assert set(ns.nodes_at_depth(1)) == {ids["a"], ids["b"]}


class TestDistance:
    def test_self_distance_zero(self, small):
        ns, ids = small
        for v in ns:
            assert ns.distance(v, v) == 0

    def test_parent_child_distance(self, small):
        ns, ids = small
        assert ns.distance(ids["a"], ids["x"]) == 1

    def test_sibling_distance(self, small):
        ns, ids = small
        assert ns.distance(ids["x"], ids["y"]) == 2

    def test_cross_subtree(self, small):
        ns, ids = small
        assert ns.distance(ids["x"], ids["z"]) == 4

    def test_lca(self, small):
        ns, ids = small
        assert ns.lca(ids["x"], ids["y"]) == ids["a"]
        assert ns.lca(ids["x"], ids["z"]) == ROOT
        assert ns.lca(ids["a"], ids["x"]) == ids["a"]

    def test_is_ancestor(self, small):
        ns, ids = small
        assert ns.is_ancestor(ROOT, ids["z"])
        assert ns.is_ancestor(ids["a"], ids["x"])
        assert ns.is_ancestor(ids["x"], ids["x"])
        assert not ns.is_ancestor(ids["x"], ids["a"])
        assert not ns.is_ancestor(ids["a"], ids["z"])


class TestRoutePath:
    def test_paper_example_up_then_down(self, small):
        """Routing from x to z climbs to the LCA then descends."""
        ns, ids = small
        path = ns.route_path(ids["x"], ids["z"])
        assert path == [ids["x"], ids["a"], ROOT, ids["b"], ids["z"]]

    def test_path_to_self(self, small):
        ns, ids = small
        assert ns.route_path(ids["x"], ids["x"]) == [ids["x"]]

    def test_path_to_ancestor(self, small):
        ns, ids = small
        assert ns.route_path(ids["x"], ROOT) == [ids["x"], ids["a"], ROOT]

    def test_path_length_equals_distance(self, small):
        ns, ids = small
        for a in ns:
            for b in ns:
                assert len(ns.route_path(a, b)) == ns.distance(a, b) + 1


class TestValidation:
    def test_child_before_parent_rejected(self):
        with pytest.raises(ValueError):
            Namespace(parent=[0, 2, 1], label=["", "a", "b"],
                      children=[[2], [], [1]])

    def test_rootless_rejected(self):
        with pytest.raises(ValueError):
            Namespace(parent=[], label=[], children=[])


class TestStepToward:
    def test_descends_to_child_on_path(self, small):
        ns, ids = small
        assert ns.step_toward(ids["a"], ids["x"]) == ids["x"]
        assert ns.step_toward(ROOT, ids["z"]) == ids["b"]

    def test_climbs_to_parent_otherwise(self, small):
        ns, ids = small
        assert ns.step_toward(ids["x"], ids["y"]) == ids["a"]
        assert ns.step_toward(ids["z"], ids["x"]) == ids["b"]

    def test_rejects_self(self, small):
        ns, ids = small
        with pytest.raises(ValueError):
            ns.step_toward(ids["x"], ids["x"])

    def test_walk_terminates_at_dest(self, small):
        ns, ids = small
        v, hops = ids["x"], 0
        while v != ids["z"]:
            v = ns.step_toward(v, ids["z"])
            hops += 1
        assert hops == ns.distance(ids["x"], ids["z"])
