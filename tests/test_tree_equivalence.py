"""Representation equivalence: CSR/arena Namespace vs the old tuple form.

The arena refactor must be observationally identical to the boxed
tuple-of-tuples representation it replaced.  ``_ReferenceNamespace``
below is a retained copy of that original construction (tuples for
``parent``/``depth``/``children``/``anc``, eagerly materialised names);
hypothesis generates random trees and every query method is
cross-checked value-for-value.
"""

import random

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

from repro.namespace.generators import coda_like_tree, random_tree
from repro.namespace.tree import ROOT, Namespace


class _ReferenceNamespace:
    """The pre-arena construction, kept verbatim as the test oracle."""

    def __init__(self, parent, label, children):
        n = len(parent)
        self.parent = tuple(parent)
        self._label = tuple(label)
        self.children = tuple(tuple(c) for c in children)
        depth = [0] * n
        anc = [()] * n
        anc[ROOT] = (ROOT,)
        for v in range(1, n):
            p = parent[v]
            depth[v] = depth[p] + 1
            anc[v] = anc[p] + (v,)
        self.depth = tuple(depth)
        self.anc = tuple(anc)
        self.max_depth = max(depth)
        names = [""] * n
        names[ROOT] = "/"
        for v in range(1, n):
            names[v] = "/" + "/".join(self._label[u] for u in anc[v][1:])
        self.names = tuple(names)
        self.name_index = {nm: v for v, nm in enumerate(names)}

    def lca_depth(self, a, b):
        aa, ab = self.anc[a], self.anc[b]
        n = min(len(aa), len(ab))
        d = 0
        while d < n and aa[d] == ab[d]:
            d += 1
        return d - 1

    def distance(self, a, b):
        return self.depth[a] + self.depth[b] - 2 * self.lca_depth(a, b)

    def is_ancestor(self, a, b):
        ab = self.anc[b]
        da = self.depth[a]
        return da < len(ab) and ab[da] == a

    def step_toward(self, a, b):
        ab = self.anc[b]
        da = self.depth[a]
        if da < len(ab) and ab[da] == a:
            return ab[da + 1]
        return self.parent[a]

    def route_path(self, src, dst):
        ld = self.lca_depth(src, dst)
        up = [self.anc[src][d] for d in range(self.depth[src], ld - 1, -1)]
        down = [self.anc[dst][d] for d in range(ld + 1, self.depth[dst] + 1)]
        return up + down

    def subtree(self, v):
        out = []
        stack = [v]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(reversed(self.children[u]))
        return out

    def neighbors(self, v):
        if v == ROOT:
            return self.children[v]
        return (self.parent[v],) + self.children[v]

    def nodes_at_depth(self, d):
        return [v for v in range(len(self.parent)) if self.depth[v] == d]

    def level_sizes(self):
        sizes = [0] * (self.max_depth + 1)
        for d in self.depth:
            sizes[d] += 1
        return sizes


def _reference_of(ns: Namespace) -> _ReferenceNamespace:
    return _ReferenceNamespace(
        list(ns.parent),
        [ns.label_of(v) for v in range(len(ns))],
        [list(ns.children[v]) for v in range(len(ns))],
    )


def _cross_check(ns: Namespace, pairs_seed: int = 0) -> None:
    ref = _reference_of(ns)
    n = len(ns)
    assert list(ns.parent) == list(ref.parent)
    assert list(ns.depth) == list(ref.depth)
    assert ns.max_depth == ref.max_depth
    for v in range(n):
        assert tuple(ns.anc[v]) == ref.anc[v]
        assert tuple(ns.children[v]) == ref.children[v]
        assert tuple(ns.neighbors(v)) == tuple(ref.neighbors(v))
        assert ns.subtree(v) == ref.subtree(v)
        name = ns.name_of(v)
        assert name == ref.names[v]
        assert ns.id_of(name) == v
    for d in range(ns.max_depth + 1):
        assert ns.nodes_at_depth(d) == ref.nodes_at_depth(d)
    assert ns.level_sizes() == ref.level_sizes()
    rng = random.Random(pairs_seed)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(200)]
    for a, b in pairs:
        assert ns.lca_depth(a, b) == ref.lca_depth(a, b)
        assert ns.distance(a, b) == ref.distance(a, b)
        assert ns.is_ancestor(a, b) == ref.is_ancestor(a, b)
        assert ns.route_path(a, b) == ref.route_path(a, b)
        if a != b:
            assert ns.step_toward(a, b) == ref.step_toward(a, b)


class TestFixedTrees:
    def test_coda_like(self):
        _cross_check(coda_like_tree(n_nodes=2000, seed=3), pairs_seed=1)

    def test_preferential(self):
        _cross_check(random_tree(800, seed=5, attach_power=1.5), pairs_seed=2)

    def test_single_root(self):
        ns = Namespace(parent=[0], label=[""])
        _cross_check(ns)
        assert ns.subtree(ROOT) == [ROOT]
        assert ns.neighbors(ROOT) == ()


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestHypothesis:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=2**20),
        power=st.sampled_from([0.0, 0.8, 2.0]),
    )
    def test_random_trees_match_reference(self, n, seed, power):
        ns = random_tree(n, seed=seed, attach_power=power)
        _cross_check(ns, pairs_seed=seed)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=200),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_explicit_children_constructor(self, n, seed):
        """The explicit-children constructor path matches the derived one."""
        base = random_tree(n, seed=seed)
        ns = Namespace(
            list(base.parent),
            [base.label_of(v) for v in range(n)],
            [list(base.children[v]) for v in range(n)],
        )
        _cross_check(ns, pairs_seed=seed)
