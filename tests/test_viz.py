"""Tests for the SVG chart primitives and figure rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import PALETTE, BarChart, LineChart, nice_ticks

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestTicks:
    def test_covering_and_round(self):
        ticks = nice_ticks(0.0, 0.93)
        assert ticks[0] <= 0.0 and ticks[-1] <= 0.93 + 0.25
        steps = {round(b - a, 12) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_degenerate_range(self):
        assert nice_ticks(5.0, 5.0)

    def test_large_values(self):
        ticks = nice_ticks(0, 65536)
        assert all(t % 1 == 0 for t in ticks)


class TestLineChart:
    def test_well_formed_svg(self):
        c = LineChart("t", y_label="y", x_label="x")
        c.add_series("a", [(0, 0.0), (1, 1.0), (2, 0.5)])
        root = parse(c.render())
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series(self):
        c = LineChart("t")
        c.add_series("a", [(0, 0), (1, 1)])
        c.add_series("b", [(0, 1), (1, 0)])
        root = parse(c.render())
        polys = root.findall(f"{SVG_NS}polyline")
        assert len(polys) == 2
        # fixed slot order, never cycled
        assert polys[0].get("stroke") == PALETTE[0]
        assert polys[1].get("stroke") == PALETTE[1]
        # 2px line weight per the mark spec
        assert all(p.get("stroke-width") == "2" for p in polys)

    def test_legend_present_for_two_series_absent_for_one(self):
        c1 = LineChart("t")
        c1.add_series("only", [(0, 0), (1, 1)])
        svg1 = c1.render()
        c2 = LineChart("t")
        c2.add_series("a", [(0, 0), (1, 1)])
        c2.add_series("b", [(0, 1), (1, 0)])
        svg2 = c2.render()
        # legend swatches are 10x10 rounded rects
        assert svg2.count("width='10' height='10'") == 2
        assert svg1.count("width='10' height='10'") == 0

    def test_hover_titles_present(self):
        c = LineChart("t")
        c.add_series("series-name", [(0, 0), (1, 1)])
        assert "<title>series-name</title>" in c.render()

    def test_text_never_wears_series_color(self):
        c = LineChart("t")
        c.add_series("a", [(0, 0), (1, 1)])
        root = parse(c.render())
        for text in root.iter(f"{SVG_NS}text"):
            assert text.get("fill") not in PALETTE

    def test_series_cap_enforced(self):
        c = LineChart("t")
        for i in range(len(PALETTE)):
            c.add_series(f"s{i}", [(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            c.add_series("one-too-many", [(0, 0)])

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            LineChart("t").render()

    def test_log_scale(self):
        c = LineChart("t", log_y=True)
        c.add_series("a", [(0, 1.0), (1, 1000.0)])
        parse(c.render())  # well-formed

    def test_escapes_markup(self):
        c = LineChart("<nasty & title>")
        c.add_series("a<b", [(0, 0), (1, 1)])
        root = parse(c.render())  # would raise on bad escaping
        assert root is not None


class TestBarChart:
    def test_one_bar_per_series_per_category(self):
        c = BarChart("t", categories=["x", "y", "z"])
        c.add_series("B", [1, 2, 3])
        c.add_series("BCR", [0.1, 0.2, 0.3])
        root = parse(c.render())
        paths = root.findall(f"{SVG_NS}path")
        assert len(paths) == 6
        assert paths[0].get("fill") == PALETTE[0]

    def test_value_count_validated(self):
        c = BarChart("t", categories=["x", "y"])
        with pytest.raises(ValueError):
            c.add_series("B", [1])

    def test_tooltips_carry_values(self):
        c = BarChart("t", categories=["x"])
        c.add_series("B", [0.25])
        assert "<title>B / x: 0.25</title>" in c.render()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BarChart("t", categories=["x"]).render()


class TestFigureRendering:
    def test_render_selected_figures(self, tmp_path):
        from repro.experiments.common import Scale
        from repro.viz.figures import render_figures

        micro = Scale(
            name="tiny", ns_levels=6, nc_nodes=300, n_servers=8,
            warmup=1.5, phase=1.5, n_phases=1, drain=1.5, cache_slots=6,
            digest_probe_limit=1, long_run=12.0, long_bucket=3,
        )
        written = render_figures(str(tmp_path), ["fig7"], scale=micro, seed=1)
        assert len(written) == 1
        svg = (tmp_path / "fig7.svg").read_text()
        parse(svg)
        assert "Fig. 7" in svg

    def test_unknown_figure_rejected(self, tmp_path):
        from repro.viz.figures import render_figures

        with pytest.raises(ValueError):
            render_figures(str(tmp_path), ["fig99"])


class TestFigureRegistry:
    def test_every_paper_figure_has_a_renderer(self):
        from repro.viz.figures import FIGURES

        assert {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                "fig9"} <= set(FIGURES)

    def test_extension_figures_registered(self):
        from repro.viz.figures import FIGURES

        assert {"fig5_sparse", "heterogeneity",
                "static_vs_adaptive"} <= set(FIGURES)
