"""Unit tests for query-stream specs and the arrival driver."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.workload.arrivals import WorkloadDriver, iter_arrivals
from repro.workload.streams import (
    StreamSegment,
    WorkloadSpec,
    cuzipf_stream,
    flash_crowd_stream,
    unif_stream,
    uzipf_stream,
)


class TestSpecs:
    def test_segment_validation(self):
        with pytest.raises(ValueError):
            StreamSegment(duration=0.0)
        with pytest.raises(ValueError):
            StreamSegment(duration=1.0, alpha=-1.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(rate=0.0, segments=(StreamSegment(1.0),))
        with pytest.raises(ValueError):
            WorkloadSpec(rate=1.0, segments=())

    def test_duration_and_boundaries(self):
        spec = WorkloadSpec(
            rate=10.0,
            segments=(StreamSegment(5.0), StreamSegment(3.0)),
        )
        assert spec.duration == 8.0
        assert spec.boundaries() == [5.0, 8.0]

    def test_unif_stream(self):
        s = unif_stream(rate=100.0, duration=10.0)
        assert len(s.segments) == 1
        assert s.segments[0].alpha == 0.0
        assert s.name == "unif"

    def test_uzipf_stream(self):
        s = uzipf_stream(rate=100.0, duration=10.0, alpha=1.25)
        assert s.segments[0].alpha == 1.25
        assert s.name == "uzipf1.25"

    def test_cuzipf_structure(self):
        """unif warm-up then n Zipf phases, each reshuffling popularity
        (the paper's cuzipf composite streams)."""
        s = cuzipf_stream(rate=100.0, alpha=1.5, warmup=20.0, phase=50.0,
                          n_phases=4)
        assert len(s.segments) == 5
        assert s.segments[0].alpha == 0.0
        assert all(seg.alpha == 1.5 for seg in s.segments[1:])
        assert all(seg.reshuffle for seg in s.segments[1:])
        assert s.duration == 220.0

    def test_cuzipf_validation(self):
        with pytest.raises(ValueError):
            cuzipf_stream(rate=1.0, alpha=1.0, warmup=1.0, phase=1.0,
                          n_phases=0)


def make_system():
    ns = balanced_tree(levels=6)
    cfg = SystemConfig.replicated(n_servers=8, seed=5)
    return build_system(ns, cfg)


class _StubSystem:
    """Minimal system facade recording injected destinations."""

    def __init__(self, n_nodes, n_servers):
        from repro.sim.engine import Engine

        self.ns = list(range(n_nodes))  # driver only needs len(ns)
        self.peers = list(range(n_servers))
        self.engine = Engine()
        self.dests = []

    def inject(self, src, dest):
        self.dests.append(dest)

    def run_until(self, t):
        self.engine.run(until=t)


def _record_destinations(spec):
    stub = _StubSystem(n_nodes=511, n_servers=8)
    drv = WorkloadDriver(stub, spec)
    drv.run()
    return stub.dests


class TestDriver:
    def test_rate_approximated(self):
        system = make_system()
        spec = unif_stream(rate=200.0, duration=10.0, seed=1)
        drv = WorkloadDriver(system, spec)
        drv.run()
        assert abs(drv.n_generated / 10.0 - 200.0) < 40.0
        assert system.stats.n_injected == drv.n_generated

    def test_arrivals_stop_at_end(self):
        system = make_system()
        spec = unif_stream(rate=100.0, duration=5.0, seed=1)
        drv = WorkloadDriver(system, spec)
        drv.start()
        system.run_until(100.0)
        # no arrivals after duration: rate*duration +- slack
        assert drv.n_generated <= 5.0 * 100.0 * 1.5

    def test_reshuffles_counted(self):
        system = make_system()
        spec = cuzipf_stream(rate=300.0, alpha=1.0, warmup=1.0, phase=1.0,
                             n_phases=3, seed=1)
        drv = WorkloadDriver(system, spec)
        drv.run()
        assert drv.n_reshuffles == 3

    def test_zipf_skews_destinations(self):
        dests = _record_destinations(
            uzipf_stream(rate=500.0, duration=6.0, alpha=1.5, seed=2)
        )
        top = max(set(dests), key=dests.count)
        assert dests.count(top) / len(dests) > 0.05  # way above uniform 1/511

    def test_uniform_spreads_destinations(self):
        dests = _record_destinations(unif_stream(rate=500.0, duration=6.0, seed=2))
        top = max(set(dests), key=dests.count)
        assert dests.count(top) / len(dests) < 0.02

    def test_double_start_rejected(self):
        system = make_system()
        drv = WorkloadDriver(system, unif_stream(rate=10.0, duration=1.0))
        drv.start()
        with pytest.raises(RuntimeError):
            drv.start()

    def test_deterministic_given_seed(self):
        outs = []
        for _ in range(2):
            system = make_system()
            drv = WorkloadDriver(system, unif_stream(rate=100.0, duration=5.0,
                                                     seed=11))
            drv.run()
            outs.append((drv.n_generated, system.stats.n_completed,
                         round(system.stats.latency.mean, 9)))
        assert outs[0] == outs[1]


class TestFlashCrowd:
    def test_rate_mult_validation(self):
        with pytest.raises(ValueError):
            StreamSegment(duration=1.0, rate_mult=0.0)
        with pytest.raises(ValueError):
            StreamSegment(duration=1.0, rate_mult=-2.0)

    def test_flash_crowd_structure(self):
        s = flash_crowd_stream(100.0, normal=8.0, crowd=12.0, alpha=1.5,
                               surge=3.0, seed=99)
        normal, crowd = s.segments
        assert normal.alpha == 0.0 and normal.rate_mult == 1.0
        assert crowd.alpha == 1.5 and crowd.reshuffle
        assert crowd.rate_mult == 3.0
        assert s.duration == 20.0 and s.name == "flash-crowd"

    def test_default_surge_preserves_historical_stream(self):
        """flash_crowd_stream(surge=1.0) is bit-identical to the
        hand-rolled two-segment spec it replaced (examples/flash_crowd)."""
        legacy = WorkloadSpec(
            rate=50.0,
            segments=(StreamSegment(4.0, alpha=0.0),
                      StreamSegment(6.0, alpha=1.5, reshuffle=True)),
            seed=99,
            name="flash-crowd",
        )
        promoted = flash_crowd_stream(50.0, normal=4.0, crowd=6.0,
                                      alpha=1.5, seed=99)
        assert (list(iter_arrivals(legacy, 511, 8))
                == list(iter_arrivals(promoted, 511, 8)))

    def test_surge_multiplies_crowd_rate(self):
        spec = flash_crowd_stream(200.0, normal=5.0, crowd=5.0, alpha=1.0,
                                  surge=4.0, seed=3)
        times = [t for t, _, _ in iter_arrivals(spec, 511, 8)]
        n_normal = sum(1 for t in times if t < 5.0)
        n_crowd = len(times) - n_normal
        # ~1000 normal arrivals vs ~4000 during the surge
        assert 700 < n_normal < 1300
        assert 3.0 < n_crowd / n_normal < 5.0

    def test_driver_matches_iter_arrivals_under_rate_mult(self):
        spec = flash_crowd_stream(80.0, normal=3.0, crowd=4.0, alpha=1.2,
                                  surge=2.5, seed=7)
        stub = _StubSystem(n_nodes=511, n_servers=8)
        rec = []
        stub.inject = lambda src, dest: rec.append(
            (stub.engine.now, src, dest)
        )
        WorkloadDriver(stub, spec).run()
        assert rec == list(iter_arrivals(spec, 511, 8))
